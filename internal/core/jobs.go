package core

import (
	"fmt"
	"math/rand"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/stats"
	"gmeansmr/internal/vec"
)

// Application counters specific to G-means.
const (
	// CounterADTests counts Anderson–Darling test executions, the O(k)
	// term of the paper's cost model.
	CounterADTests = "app.ad.tests"
	// CounterProjections counts point projections computed by test jobs.
	CounterProjections = "app.projections"
)

// Interned forms for the per-record/per-test ticks below.
var (
	counterIDADTests     = mr.InternCounter(CounterADTests)
	counterIDProjections = mr.InternCounter(CounterProjections)
)

// ---------------------------------------------------------------------------
// KMeansAndFindNewCenters (paper Algorithm 2)
// ---------------------------------------------------------------------------

// kfncMapper performs the last k-means assignment of the round over
// decoded points. The paper's formulation emits the coordinates of each
// point twice — once for the k-means reduction and once under key+Offset
// so the reduce side can pick two candidate next-iteration centers per
// current center ("This doubles the quantity of data to be shuffled ...
// largely mitigated by the use of a combiner"). This mapper pre-combines
// the k-means half in-mapper (per-center WeightedPoint accumulators,
// flushed in Close), which is exactly what the spill combiner would have
// produced for those keys, in the same fold order — so sums, candidate
// selection and therefore the whole G-means trajectory stay bit-identical
// to the emit-twice formulation. Candidate records still go out one per
// point: the combiner/reducer's seeded random pick needs to see them.
type kfncMapper struct {
	env     kmeansmr.Env
	centers []vec.Vector
	nearest func(vec.Vector) (int, float64, int64)

	accs   []vec.WeightedPoint
	batch  kmeansmr.BatchAssigner
	dists  int64
	points int64
}

func (m *kfncMapper) Setup(*mr.TaskContext) error {
	if m.nearest == nil {
		m.nearest = m.env.NearestFunc(m.centers)
	}
	m.accs = make([]vec.WeightedPoint, len(m.centers))
	return nil
}

func (m *kfncMapper) MapPoint(_ *mr.TaskContext, p vec.Vector, emit mr.Emitter) error {
	best, _, comps := m.nearest(p)
	m.dists += comps
	m.points++
	if best < 0 {
		return fmt.Errorf("core: point has no nearest center (all distances non-finite)")
	}
	m.accs[best].Merge(vec.WeightedPoint{Sum: p, Count: 1})
	// The candidate value wraps the cache's point view without copying:
	// combiners and reducers re-emit candidate values verbatim and never
	// mutate them, and the driver copies on Centroid().
	emit.Emit(int64(best)+Offset, mr.OwnWeightedPointValue(p))
	return nil
}

// MapColumns batches the assignment half of the job: one fused kernel
// call per split, then the same per-point fold and candidate emission in
// input order — so partial sums, candidate streams and counters match the
// MapPoint loop bit for bit.
func (m *kfncMapper) MapColumns(_ *mr.TaskContext, cols *dfs.ColumnarSplit, emit mr.Emitter) error {
	n := cols.Len()
	idx := m.batch.Assign(m.centers, cols)
	m.dists += int64(len(m.centers)) * int64(n)
	m.points += int64(n)
	for j, best := range idx {
		if best < 0 {
			return fmt.Errorf("core: point has no nearest center (all distances non-finite)")
		}
		p := cols.At(j)
		m.accs[best].Merge(vec.WeightedPoint{Sum: p, Count: 1})
		emit.Emit(int64(best)+Offset, mr.OwnWeightedPointValue(p))
	}
	return nil
}

func (m *kfncMapper) Close(ctx *mr.TaskContext, emit mr.Emitter) error {
	ctx.Count(kmeansmr.CounterIDDistances, m.dists)
	ctx.Count(kmeansmr.CounterIDPoints, m.points)
	for i := range m.accs {
		if m.accs[i].Count > 0 {
			emit.Emit(int64(i), mr.WeightedPointValue{WeightedPoint: m.accs[i]})
		}
	}
	return nil
}

// legacyKFNCMapper is the paper's literal emit-twice formulation, kept for
// the DisableCombiners ablation so the "doubled shuffle" the paper
// describes stays measurable.
type legacyKFNCMapper struct {
	env     kmeansmr.Env
	centers []vec.Vector
	nearest func(vec.Vector) (int, float64, int64)
}

func (m *legacyKFNCMapper) Setup(*mr.TaskContext) error {
	if m.nearest == nil {
		m.nearest = m.env.NearestFunc(m.centers)
	}
	return nil
}

func (m *legacyKFNCMapper) MapPoint(ctx *mr.TaskContext, p vec.Vector, emit mr.Emitter) error {
	best, _, comps := m.nearest(p)
	ctx.Count(kmeansmr.CounterIDDistances, comps)
	ctx.Count(kmeansmr.CounterIDPoints, 1)
	// Both values share the cached vector: the k-means reduction only
	// accumulates into its own sums and the candidate path re-emits
	// values verbatim, so no copy is needed.
	wp := mr.OwnWeightedPointValue(p)
	emit.Emit(int64(best), wp)
	emit.Emit(int64(best)+Offset, wp)
	return nil
}

func (m *legacyKFNCMapper) Close(*mr.TaskContext, mr.Emitter) error { return nil }

// kfncReducer serves as combiner and reducer of KMeansAndFindNewCenters:
// "the combiner and reducer test the value of the key. If it is larger than
// the predefined offset, they keep only 2 new centers per cluster.
// Otherwise they perform classical k-means reduction."
//
// Candidate selection is seeded by (run seed, key) rather than task id, so
// the picked candidates do not depend on how keys were partitioned across
// reduce tasks — runs on differently-sized clusters stay bit-identical,
// which the node-scaling experiment relies on.
type kfncReducer struct {
	seed int64
}

func (r *kfncReducer) Setup(*mr.TaskContext) error { return nil }

func (r *kfncReducer) Reduce(ctx *mr.TaskContext, key int64, values []mr.Value, emit mr.Emitter) error {
	if key < Offset {
		return kmeansmr.MergeReducer{}.Reduce(ctx, key, values, emit)
	}
	// Candidate stream: keep two of the incoming points (each value is a
	// single point or a survivor of a previous combine round).
	switch len(values) {
	case 0:
		return nil
	case 1:
		emit.Emit(key, values[0])
	case 2:
		emit.Emit(key, values[0])
		emit.Emit(key, values[1])
	default:
		rng := rand.New(rand.NewSource(r.seed*1_000_003 ^ key))
		i := rng.Intn(len(values))
		j := rng.Intn(len(values) - 1)
		if j >= i {
			j++
		}
		emit.Emit(key, values[i])
		emit.Emit(key, values[j])
	}
	return nil
}

func (r *kfncReducer) Close(*mr.TaskContext, mr.Emitter) error { return nil }

// kfncOutput is the driver-side decoding of the job's output.
type kfncOutput struct {
	centers    []vec.Vector
	sizes      []int64
	candidates [][]vec.Vector // ≤2 candidate points per center
}

// runKFNC runs the KMeansAndFindNewCenters job over the given centers.
func runKFNC(cfg Config, centers []vec.Vector, round int) (*kfncOutput, *mr.Result, error) {
	nearest := cfg.Env.NearestFunc(centers)
	job := &mr.Job{
		Name:            fmt.Sprintf("gmeans-kfnc-round-%d", round),
		FS:              cfg.FS,
		Cluster:         cfg.Cluster,
		Input:           []string{cfg.Input},
		Ctx:             cfg.Env.Ctx,
		Trace:           cfg.Env.Trace,
		PointDim:        cfg.Dim,
		DisableColumnar: cfg.Env.RowMajorOnly(),
		Runner:          cfg.Env.Runner,
		Spec:            kfncSpec(cfg, centers, round),
		NewReducer:      func() mr.Reducer { return &kfncReducer{seed: cfg.Seed + int64(round)} },
	}
	if cfg.DisableCombiners {
		job.NewPointMapper = func() mr.PointMapper {
			return &legacyKFNCMapper{env: cfg.Env, centers: centers, nearest: nearest}
		}
	} else {
		job.NewPointMapper = func() mr.PointMapper {
			return &kfncMapper{env: cfg.Env, centers: centers, nearest: nearest}
		}
		job.NewCombiner = func() mr.Reducer { return &kfncReducer{seed: cfg.Seed + int64(round)} }
	}
	res, err := job.Run()
	if err != nil {
		return nil, nil, err
	}
	out := &kfncOutput{
		centers:    vec.CloneAll(centers),
		sizes:      make([]int64, len(centers)),
		candidates: make([][]vec.Vector, len(centers)),
	}
	for _, kv := range res.Output {
		wp, ok := kv.Value.(mr.WeightedPointValue)
		if !ok {
			return nil, nil, fmt.Errorf("core: unexpected KFNC output value %T", kv.Value)
		}
		if kv.Key >= Offset {
			idx := kv.Key - Offset
			if idx < 0 || idx >= int64(len(centers)) {
				return nil, nil, fmt.Errorf("core: KFNC candidate key %d out of range", kv.Key)
			}
			if len(out.candidates[idx]) < 2 {
				out.candidates[idx] = append(out.candidates[idx], wp.Centroid())
			}
			continue
		}
		if kv.Key < 0 || kv.Key >= int64(len(centers)) {
			return nil, nil, fmt.Errorf("core: KFNC key %d out of range", kv.Key)
		}
		if wp.Count > 0 {
			out.centers[kv.Key] = wp.Centroid()
			out.sizes[kv.Key] = wp.Count
		}
	}
	return out, res, nil
}

// ---------------------------------------------------------------------------
// TestClusters (paper Algorithms 3–4): reducer-side Anderson–Darling
// ---------------------------------------------------------------------------

// testMapper assigns each point to its cluster (a center of the *previous*
// iteration) and projects it on the vector joining the cluster's two
// current candidate centers. Clusters already marked found emit nothing.
//
// parents[0:foundCount] are final centers; parents[foundCount+i] is the
// parent of active cluster i, whose split vector is vectors[i].
type testMapper struct {
	env        kmeansmr.Env
	parents    []vec.Vector
	foundCount int
	vectors    []vec.Vector
	nearest    func(vec.Vector) (int, float64, int64)
	batch      kmeansmr.BatchAssigner
}

func (m *testMapper) Setup(*mr.TaskContext) error {
	if m.nearest == nil {
		m.nearest = m.env.NearestFunc(m.parents)
	}
	return nil
}

func (m *testMapper) MapPoint(ctx *mr.TaskContext, p vec.Vector, emit mr.Emitter) error {
	best, _, comps := m.nearest(p)
	ctx.Count(kmeansmr.CounterIDDistances, comps)
	if best < m.foundCount {
		return nil // point belongs to a cluster already accepted as Gaussian
	}
	i := best - m.foundCount
	proj := vec.Project(p, m.vectors[i])
	ctx.Count(counterIDProjections, 1)
	emit.Emit(int64(i), mr.Float64Value(proj))
	return nil
}

// MapColumns batches the cluster lookup; projections then run per point
// in input order on the row views, so the emitted streams are identical
// to the MapPoint loop's.
func (m *testMapper) MapColumns(ctx *mr.TaskContext, cols *dfs.ColumnarSplit, emit mr.Emitter) error {
	n := cols.Len()
	idx := m.batch.Assign(m.parents, cols)
	ctx.Count(kmeansmr.CounterIDDistances, int64(len(m.parents))*int64(n))
	var projections int64
	for j, best := range idx {
		if int(best) < m.foundCount {
			continue // cluster already accepted as Gaussian (or best < 0)
		}
		i := int(best) - m.foundCount
		projections++
		emit.Emit(int64(i), mr.Float64Value(vec.Project(cols.At(j), m.vectors[i])))
	}
	ctx.Count(counterIDProjections, projections)
	return nil
}

func (m *testMapper) Close(*mr.TaskContext, mr.Emitter) error { return nil }

// testReducer normalizes the projections of one cluster and runs the
// Anderson–Darling test (paper Algorithm 4). It reserves heap per the
// paper's measured 64 B/point model, so undersized task heaps fail exactly
// like the paper's "Java heap space" crashes (Figure 2).
type testReducer struct {
	alpha float64
	minN  int
}

func (r *testReducer) Setup(*mr.TaskContext) error { return nil }

func (r *testReducer) Reduce(ctx *mr.TaskContext, key int64, values []mr.Value, emit mr.Emitter) error {
	heap := int64(len(values)) * HeapBytesPerPoint
	if err := ctx.ReserveHeap(heap); err != nil {
		return err
	}
	defer ctx.ReleaseHeap(heap)

	projections := make([]float64, 0, len(values))
	for _, v := range values {
		f, ok := v.(mr.Float64Value)
		if !ok {
			return fmt.Errorf("core: unexpected projection value %T", v)
		}
		projections = append(projections, float64(f))
	}
	ctx.Count(counterIDADTests, 1)
	res, err := stats.ADTest(projections, r.alpha, r.minN)
	if err != nil {
		// Not enough samples for a verdict: report "undecided accept".
		emit.Emit(key, mr.ADDecisionValue{N: int64(len(projections)), Normal: true})
		return nil
	}
	emit.Emit(key, mr.ADDecisionValue{A2Star: res.A2Star, N: int64(res.N), Normal: res.Normal})
	return nil
}

func (r *testReducer) Close(*mr.TaskContext, mr.Emitter) error { return nil }

// ---------------------------------------------------------------------------
// TestFewClusters (paper Algorithm 5): mapper-side Anderson–Darling
// ---------------------------------------------------------------------------

// fewMapper buffers the projections of every cluster it sees in its split
// and tests them locally in Close, emitting one A*² decision per cluster —
// "the test for normality is directly performed by the mapper, thus on
// subsets of data", which keeps reduce-phase parallelism from bounding the
// job while k is small.
type fewMapper struct {
	env        kmeansmr.Env
	parents    []vec.Vector
	foundCount int
	vectors    []vec.Vector
	alpha      float64
	minN       int

	lists   map[int][]float64
	nearest func(vec.Vector) (int, float64, int64)
	batch   kmeansmr.BatchAssigner
}

func (m *fewMapper) Setup(*mr.TaskContext) error {
	m.lists = make(map[int][]float64)
	if m.nearest == nil {
		m.nearest = m.env.NearestFunc(m.parents)
	}
	return nil
}

func (m *fewMapper) MapPoint(ctx *mr.TaskContext, p vec.Vector, emit mr.Emitter) error {
	best, _, comps := m.nearest(p)
	ctx.Count(kmeansmr.CounterIDDistances, comps)
	if best < m.foundCount {
		return nil
	}
	i := best - m.foundCount
	// One double per buffered projection: the mapper-side memory footprint
	// is O(split size / dimension), the bound the paper relies on.
	if err := ctx.ReserveHeap(8); err != nil {
		return err
	}
	m.lists[i] = append(m.lists[i], vec.Project(p, m.vectors[i]))
	ctx.Count(counterIDProjections, 1)
	return nil
}

// MapColumns batches the cluster lookup of the mapper-side strategy; the
// projection buffering (and its per-double heap reservation) runs per
// point in input order, so buffered lists, heap frontier and counters
// match the MapPoint loop exactly.
func (m *fewMapper) MapColumns(ctx *mr.TaskContext, cols *dfs.ColumnarSplit, _ mr.Emitter) error {
	n := cols.Len()
	idx := m.batch.Assign(m.parents, cols)
	ctx.Count(kmeansmr.CounterIDDistances, int64(len(m.parents))*int64(n))
	var projections int64
	for j, best := range idx {
		if int(best) < m.foundCount {
			continue // cluster already accepted as Gaussian (or best < 0)
		}
		i := int(best) - m.foundCount
		if err := ctx.ReserveHeap(8); err != nil {
			return err
		}
		m.lists[i] = append(m.lists[i], vec.Project(cols.At(j), m.vectors[i]))
		projections++
	}
	ctx.Count(counterIDProjections, projections)
	return nil
}

func (m *fewMapper) Close(ctx *mr.TaskContext, emit mr.Emitter) error {
	for i, projections := range m.lists {
		if len(projections) < m.minN {
			// "There is a risk that the number of points in some clusters
			// is smaller than the threshold. The mapper is then not able to
			// compute a decision."
			continue
		}
		ctx.Count(counterIDADTests, 1)
		res, err := stats.ADTest(projections, m.alpha, m.minN)
		if err != nil {
			continue
		}
		emit.Emit(int64(i), mr.ADDecisionValue{A2Star: res.A2Star, N: int64(res.N), Normal: res.Normal})
	}
	return nil
}

// fewReducer combines the mapper decisions of one cluster: "their task is
// only to combine the decisions taken by mappers". The combining rule is
// the configurable VotePolicy (sample-size-weighted majority by default).
type fewReducer struct {
	vote VotePolicy
}

func (r *fewReducer) Setup(*mr.TaskContext) error { return nil }

func (r *fewReducer) Reduce(_ *mr.TaskContext, key int64, values []mr.Value, emit mr.Emitter) error {
	var normalN, totalN int64
	var wsum float64
	anyNormal, allNormal := false, true
	for _, v := range values {
		d, ok := v.(mr.ADDecisionValue)
		if !ok {
			return fmt.Errorf("core: unexpected decision value %T", v)
		}
		totalN += d.N
		wsum += d.A2Star * float64(d.N)
		if d.Normal {
			normalN += d.N
			anyNormal = true
		} else {
			allNormal = false
		}
	}
	if totalN == 0 {
		return nil
	}
	var normal bool
	switch r.vote {
	case VoteAll:
		normal = allNormal
	case VoteAny:
		normal = anyNormal
	default:
		normal = normalN*2 >= totalN
	}
	emit.Emit(key, mr.ADDecisionValue{A2Star: wsum / float64(totalN), N: totalN, Normal: normal})
	return nil
}

func (r *fewReducer) Close(*mr.TaskContext, mr.Emitter) error { return nil }

// runTest runs the selected normality-test job and returns one outcome per
// active cluster (indexed like the active slice); clusters with no decision
// come back Decided=false.
func runTest(cfg Config, strategy TestStrategy, parents []vec.Vector, foundCount int, vectors []vec.Vector, round int) ([]TestOutcome, *mr.Result, error) {
	numActive := len(vectors)
	nearest := cfg.Env.NearestFunc(parents)
	job := &mr.Job{
		Name:            fmt.Sprintf("gmeans-%s-round-%d", strategy, round),
		FS:              cfg.FS,
		Cluster:         cfg.Cluster,
		Input:           []string{cfg.Input},
		Ctx:             cfg.Env.Ctx,
		Trace:           cfg.Env.Trace,
		PointDim:        cfg.Dim,
		DisableColumnar: cfg.Env.RowMajorOnly(),
		Runner:          cfg.Env.Runner,
		Spec:            testSpec(cfg, strategy, parents, foundCount, vectors),
		// "The number of reduce tasks is still equal to k": one partition
		// per cluster under test.
		NumReducers: numActive,
	}
	switch strategy {
	case StrategyReducer:
		job.NewPointMapper = func() mr.PointMapper {
			return &testMapper{env: cfg.Env, parents: parents, foundCount: foundCount,
				vectors: vectors, nearest: nearest}
		}
		job.NewReducer = func() mr.Reducer { return &testReducer{alpha: cfg.Alpha, minN: cfg.MinTestSamples} }
	case StrategyFewClusters:
		job.NewPointMapper = func() mr.PointMapper {
			return &fewMapper{env: cfg.Env, parents: parents, foundCount: foundCount,
				vectors: vectors, alpha: cfg.Alpha, minN: cfg.MinTestSamples, nearest: nearest}
		}
		job.NewReducer = func() mr.Reducer { return &fewReducer{vote: cfg.Vote} }
	default:
		return nil, nil, fmt.Errorf("core: unknown test strategy %q", strategy)
	}
	res, err := job.Run()
	if err != nil {
		return nil, nil, err
	}
	outcomes := make([]TestOutcome, numActive)
	for _, kv := range res.Output {
		d, ok := kv.Value.(mr.ADDecisionValue)
		if !ok {
			return nil, nil, fmt.Errorf("core: unexpected test output %T", kv.Value)
		}
		if kv.Key < 0 || kv.Key >= int64(numActive) {
			return nil, nil, fmt.Errorf("core: test output key %d out of range", kv.Key)
		}
		outcomes[kv.Key] = TestOutcome{A2Star: d.A2Star, N: d.N, Normal: d.Normal, Decided: true}
	}
	return outcomes, res, nil
}
