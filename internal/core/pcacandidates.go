package core

import (
	"fmt"
	"math"
	"math/rand"

	"gmeansmr/internal/dfs"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/vec"
)

// This file implements the candidate-selection variant the paper sketches:
// "In our implementation, the new centers are chosen randomly. More
// sophisticated algorithms can be used to select the new points, but they
// may require an additional MapReduce job." The additional job is built
// here: per current center it aggregates the cluster's mean and covariance
// (in-mapper combining, one value per center per map task), the reducer
// extracts the principal component by power iteration and emits the two
// Hamerly–Elkan children c ± dir·√(2λ/π) — the deterministic placement of
// the original sequential algorithm, at the price of one extra dataset
// read per G-means round.

// CandidatePolicy selects how next-round candidate centers are picked.
type CandidatePolicy int

// Candidate policies.
const (
	// CandidatesRandom keeps two random cluster points via the fused
	// KMeansAndFindNewCenters job — the paper's implementation. Default.
	CandidatesRandom CandidatePolicy = iota
	// CandidatesPCA runs the additional covariance job and places
	// children along each cluster's principal component.
	CandidatesPCA
)

func (c CandidatePolicy) String() string {
	if c == CandidatesPCA {
		return "pca"
	}
	return "random"
}

// covValue accumulates the sufficient statistics of one cluster for mean
// and covariance: Σx, Σx·xᵀ (dense row-major d×d) and the count.
type covValue struct {
	Sum   vec.Vector
	Outer []float64
	Count int64
}

// ByteSize is d doubles + d² doubles + a long.
func (v covValue) ByteSize() int { return 8*len(v.Sum) + 8*len(v.Outer) + 8 }

func newCovValue(d int) *covValue {
	return &covValue{Sum: make(vec.Vector, d), Outer: make([]float64, d*d)}
}

func (v *covValue) add(p vec.Vector) {
	d := len(p)
	for i := 0; i < d; i++ {
		v.Sum[i] += p[i]
		row := v.Outer[i*d:]
		for j := 0; j < d; j++ {
			row[j] += p[i] * p[j]
		}
	}
	v.Count++
}

func (v *covValue) merge(o covValue) {
	for i := range v.Sum {
		v.Sum[i] += o.Sum[i]
	}
	for i := range v.Outer {
		v.Outer[i] += o.Outer[i]
	}
	v.Count += o.Count
}

// pcaMapper assigns each point to its nearest center and accumulates the
// per-cluster covariance statistics locally, emitting one value per
// cluster in Close (in-mapper combining — a d×d accumulator per cluster is
// tiny next to the split's points).
type pcaMapper struct {
	env     kmeansmr.Env
	centers []vec.Vector
	nearest func(vec.Vector) (int, float64, int64)
	acc     map[int]*covValue
	batch   kmeansmr.BatchAssigner
}

func (m *pcaMapper) Setup(*mr.TaskContext) error {
	if m.nearest == nil {
		m.nearest = m.env.NearestFunc(m.centers)
	}
	m.acc = make(map[int]*covValue)
	return nil
}

func (m *pcaMapper) MapPoint(ctx *mr.TaskContext, p vec.Vector, emit mr.Emitter) error {
	best, _, comps := m.nearest(p)
	ctx.Count(kmeansmr.CounterIDDistances, comps)
	a := m.acc[best]
	if a == nil {
		a = newCovValue(m.env.Dim)
		m.acc[best] = a
	}
	a.add(p)
	return nil
}

// MapColumns batches the assignment; covariance statistics then
// accumulate per point in input order, exactly as the MapPoint loop folds
// them.
func (m *pcaMapper) MapColumns(ctx *mr.TaskContext, cols *dfs.ColumnarSplit, _ mr.Emitter) error {
	n := cols.Len()
	idx := m.batch.Assign(m.centers, cols)
	ctx.Count(kmeansmr.CounterIDDistances, int64(len(m.centers))*int64(n))
	for j, best := range idx {
		a := m.acc[int(best)]
		if a == nil {
			a = newCovValue(m.env.Dim)
			m.acc[int(best)] = a
		}
		a.add(cols.At(j))
	}
	return nil
}

func (m *pcaMapper) Close(_ *mr.TaskContext, emit mr.Emitter) error {
	for c, a := range m.acc {
		emit.Emit(int64(c), *a)
	}
	return nil
}

// pcaReducer merges the per-cluster statistics and emits the two principal
// children for each center.
type pcaReducer struct {
	seed int64
}

func (r *pcaReducer) Setup(*mr.TaskContext) error { return nil }

func (r *pcaReducer) Reduce(ctx *mr.TaskContext, key int64, values []mr.Value, emit mr.Emitter) error {
	var acc *covValue
	for _, v := range values {
		cv, ok := v.(covValue)
		if !ok {
			return fmt.Errorf("core: unexpected covariance value %T", v)
		}
		if acc == nil {
			a := newCovValue(len(cv.Sum))
			acc = a
		}
		acc.merge(cv)
	}
	if acc == nil || acc.Count == 0 {
		return nil
	}
	d := len(acc.Sum)
	n := float64(acc.Count)
	mean := vec.Scale(acc.Sum, 1/n)
	cov := make([]float64, d*d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			cov[i*d+j] = acc.Outer[i*d+j]/n - mean[i]*mean[j]
		}
	}
	// Deterministic per-key start vector keeps runs reproducible across
	// any partitioning.
	rng := rand.New(rand.NewSource(r.seed*999_983 ^ key))
	dir, lambda := powerIteration(cov, d, 50, rng)
	if lambda <= 0 {
		// Degenerate cluster (point mass): fall back to the mean twice;
		// the driver treats identical children as "nothing to split".
		emit.Emit(key, mr.PointValue{Coords: mean})
		emit.Emit(key, mr.PointValue{Coords: vec.Clone(mean)})
		return nil
	}
	m := vec.Scale(dir, math.Sqrt(2*lambda/math.Pi))
	emit.Emit(key, mr.PointValue{Coords: vec.Add(mean, m)})
	emit.Emit(key, mr.PointValue{Coords: vec.Sub(mean, m)})
	return nil
}

func (r *pcaReducer) Close(*mr.TaskContext, mr.Emitter) error { return nil }

// powerIteration extracts the dominant eigenpair of the dense symmetric
// matrix cov (row-major d×d).
func powerIteration(cov []float64, d, iters int, rng *rand.Rand) (vec.Vector, float64) {
	x := make(vec.Vector, d)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	norm := vec.Norm(x)
	if norm == 0 {
		x[0] = 1
	} else {
		vec.ScaleInPlace(x, 1/norm)
	}
	var lambda float64
	y := make(vec.Vector, d)
	for it := 0; it < iters; it++ {
		for i := 0; i < d; i++ {
			var s float64
			row := cov[i*d:]
			for j := 0; j < d; j++ {
				s += row[j] * x[j]
			}
			y[i] = s
		}
		lambda = vec.Norm(y)
		if lambda == 0 {
			return x, 0
		}
		for i := range x {
			x[i] = y[i] / lambda
		}
	}
	return x, lambda
}

// runPCACandidates executes the additional candidate-selection job over
// the given centers and returns two principal-component children per
// center (entries may be nil for empty clusters).
func runPCACandidates(cfg Config, centers []vec.Vector, round int) ([][]vec.Vector, *mr.Result, error) {
	nearest := cfg.Env.NearestFunc(centers)
	job := &mr.Job{
		Name:            fmt.Sprintf("gmeans-pca-candidates-round-%d", round),
		FS:              cfg.FS,
		Cluster:         cfg.Cluster,
		Input:           []string{cfg.Input},
		Ctx:             cfg.Env.Ctx,
		Trace:           cfg.Env.Trace,
		PointDim:        cfg.Dim,
		DisableColumnar: cfg.Env.RowMajorOnly(),
		Runner:          cfg.Env.Runner,
		Spec:            pcaSpec(cfg, centers, round),
		NewPointMapper: func() mr.PointMapper {
			return &pcaMapper{env: cfg.Env, centers: centers, nearest: nearest}
		},
		NewReducer: func() mr.Reducer { return &pcaReducer{seed: cfg.Seed + int64(round)} },
	}
	res, err := job.Run()
	if err != nil {
		return nil, nil, err
	}
	candidates := make([][]vec.Vector, len(centers))
	for _, kv := range res.Output {
		pv, ok := kv.Value.(mr.PointValue)
		if !ok {
			return nil, nil, fmt.Errorf("core: unexpected PCA output %T", kv.Value)
		}
		if kv.Key < 0 || kv.Key >= int64(len(centers)) {
			return nil, nil, fmt.Errorf("core: PCA output key %d out of range", kv.Key)
		}
		if len(candidates[kv.Key]) < 2 {
			candidates[kv.Key] = append(candidates[kv.Key], pv.Coords)
		}
	}
	return candidates, res, nil
}
