// Package core implements the paper's contribution: G-means on MapReduce
// (Algorithm 1 of the paper). The driver chains three jobs per iteration —
//
//	KMeans                    refine the current candidate centers
//	KMeansAndFindNewCenters   last k-means pass + pick 2 candidates/center
//	TestClusters              project each cluster on the vector joining
//	                          its two candidates and Anderson–Darling test
//	                          the projections (or TestFewClusters: test in
//	                          the mapper while k is small)
//
// — splitting every cluster whose projections fail the normality test,
// until every cluster looks Gaussian.
package core

import (
	"fmt"

	"gmeansmr/internal/kmeansmr"
)

// Offset is the key offset separating "candidate center" records from
// "refine this center" records inside the KMeansAndFindNewCenters job. The
// paper sets it to half the largest Java long: 2^62 ("The value of OFFSET
// is thus 2^62"), which also caps the algorithm at 2^62 centers.
const Offset = int64(1) << 62

// HeapBytesPerPoint is the reducer-memory model measured by the paper's
// first experiment (Figure 2): "Linear regression shows our reducer
// requires approximatively 64 Bytes (8 doubles) per point."
const HeapBytesPerPoint = 64

// DefaultMinTestSamples is the minimum projection-sample size for a
// mapper-side Anderson–Darling decision. The paper: "a minimum size of 8 is
// considered to be sufficient. In our implementation we use a threshold of
// 20, to stay on the safe side."
const DefaultMinTestSamples = 20

// VotePolicy is how the TestFewClusters reducer combines the per-mapper
// normality decisions of one cluster.
type VotePolicy int

// Vote policies.
const (
	// VoteMajority accepts the Gaussian hypothesis when the majority of
	// mapper decisions (weighted by sample size) accept it. The default.
	VoteMajority VotePolicy = iota
	// VoteAll accepts only when every mapper decision accepts — the
	// aggressive-splitting extreme.
	VoteAll
	// VoteAny accepts when any mapper decision accepts — the conservative
	// extreme.
	VoteAny
)

func (v VotePolicy) String() string {
	switch v {
	case VoteAll:
		return "all"
	case VoteAny:
		return "any"
	default:
		return "majority"
	}
}

// TestStrategy names which normality-test job an iteration used.
type TestStrategy string

// Strategies.
const (
	// StrategyFewClusters tests inside the mapper on split-local samples
	// (the paper's Algorithm 5), used while k is small.
	StrategyFewClusters TestStrategy = "TestFewClusters"
	// StrategyReducer tests inside the reducer on all projections of a
	// cluster (the paper's Algorithms 3–4).
	StrategyReducer TestStrategy = "TestClusters"
	// StrategyMerge labels the Progress event of the post-processing
	// merge round (MergeCloseCenters); it is not a normality test and
	// never appears in Result.PerIteration.
	StrategyMerge TestStrategy = "merge"
)

// Config parameterizes an MR G-means run.
type Config struct {
	kmeansmr.Env

	// InitialClusters is the number of clusters the first iteration starts
	// from (the paper starts with one).
	InitialClusters int
	// Alpha is the Anderson–Darling significance level; smaller splits
	// less. Zero selects 0.0001, the strict level used by the original
	// G-means paper.
	Alpha float64
	// KMeansIterations is the number of refinement iterations per G-means
	// round, including the KMeansAndFindNewCenters pass. The paper found
	// two are enough ("we found experimentally that only two k-means
	// iterations are sufficient"). Zero selects 2.
	KMeansIterations int
	// MaxIterations caps the G-means rounds; zero selects 30 (the paper
	// needed at most 13 on its workloads).
	MaxIterations int
	// MaxK stops splitting once this many centers exist (0 = unlimited).
	MaxK int
	// MinTestSamples is the smallest projection sample a mapper-side test
	// will decide on; zero selects DefaultMinTestSamples.
	MinTestSamples int
	// MinClusterSize marks clusters smaller than this as final without
	// testing (they cannot produce a reliable split decision). Zero
	// selects 2×MinTestSamples.
	MinClusterSize int64
	// Vote selects the TestFewClusters decision-combining policy.
	Vote VotePolicy
	// Candidates selects how next-round candidate centers are picked:
	// CandidatesRandom fuses the pick into the last k-means pass (the
	// paper's KMeansAndFindNewCenters); CandidatesPCA pays the "additional
	// MapReduce job" the paper mentions to place children along each
	// cluster's principal component, as the original sequential G-means
	// does.
	Candidates CandidatePolicy
	// ConfirmRounds is the number of consecutive Anderson–Darling accepts
	// (each against a freshly drawn candidate pair, hence a fresh
	// projection direction) required before a cluster is frozen. The
	// paper's Algorithm 1 freezes on the first accept (ConfirmRounds=1),
	// but under *global* k-means refinement a cluster's two candidates can
	// both land in one of its true sub-clusters, leaving the projection
	// vector orthogonal to the real separation — a merged cluster then
	// passes the test and is frozen forever. Requiring a second opinion
	// with an independent direction repairs exactly that failure mode and
	// costs the "few additional iterations" the paper reports needing in
	// practice. Zero selects 2.
	ConfirmRounds int
	// ForceStrategy, when non-empty, pins the test strategy instead of the
	// paper's hybrid switch rule. Used by ablation benchmarks.
	ForceStrategy TestStrategy
	// DisableCombiners turns combiners off in every job, for the shuffle
	// ablation bench.
	DisableCombiners bool
	// MergeRadius, when positive, enables the post-processing step the
	// paper leaves as future work: centers closer than this are merged
	// after the loop terminates.
	MergeRadius float64
	// Seed drives initial-center picking and candidate sampling.
	Seed int64
	// Progress, when non-nil, is invoked after every G-means round with the
	// round's diagnostics and a snapshot of the run's cumulative counters.
	// It runs on the driver goroutine; keep it fast.
	Progress func(IterationStats, map[string]int64)
}

func (c Config) withDefaults() Config {
	if c.InitialClusters <= 0 {
		c.InitialClusters = 1
	}
	if c.Alpha == 0 {
		c.Alpha = 0.0001
	}
	if c.KMeansIterations <= 0 {
		c.KMeansIterations = 2
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 30
	}
	if c.MinTestSamples <= 0 {
		c.MinTestSamples = DefaultMinTestSamples
	}
	if c.ConfirmRounds <= 0 {
		c.ConfirmRounds = 2
	}
	if c.MinClusterSize <= 0 {
		c.MinClusterSize = 2 * int64(c.MinTestSamples)
	}
	return c
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if err := c.Env.Validate(); err != nil {
		return err
	}
	if c.Alpha < 0 || c.Alpha >= 1 {
		return fmt.Errorf("core: alpha must be in (0,1), got %g", c.Alpha)
	}
	if c.InitialClusters < 0 {
		return fmt.Errorf("core: InitialClusters must be non-negative, got %d", c.InitialClusters)
	}
	return nil
}
