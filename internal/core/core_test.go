package core

import (
	"errors"
	"math"
	"testing"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/lloyd"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/vec"
)

// newEnv materializes a mixture dataset into a fresh DFS.
func newEnv(t *testing.T, spec dataset.Spec, splitSize int, cluster mr.Cluster) (kmeansmr.Env, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	fs := dfs.New(splitSize)
	ds.WriteToDFS(fs, "/data/points.txt")
	return kmeansmr.Env{FS: fs, Cluster: cluster, Input: "/data/points.txt", Dim: spec.Dim}, ds
}

func smallCluster() mr.Cluster {
	return mr.Cluster{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2,
		TaskHeapBytes: 64 << 20, MaxHeapUsage: 0.66}
}

func TestRunDiscoversApproximateK(t *testing.T) {
	env, ds := newEnv(t, dataset.Spec{K: 10, Dim: 2, N: 20000, MinSeparation: 15, Seed: 42}, 256<<10, smallCluster())
	res, err := Run(Config{Env: env, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's MR G-means systematically over-estimates by ≈1.5×; accept
	// [k, 2k] and require every true cluster to be covered.
	if res.K < 10 || res.K > 20 {
		t.Fatalf("discovered k=%d, want within [10,20] for true k=10", res.K)
	}
	for _, truth := range ds.Centers {
		_, d2 := vec.NearestIndex(truth, res.Centers)
		if math.Sqrt(d2) > 4 {
			t.Errorf("no center near true center %v (%.2f away)", truth, math.Sqrt(d2))
		}
	}
	if res.Iterations < 4 { // ≥ 1 + log2(10)
		t.Errorf("iterations = %d, expected at least ceil(log2 10)+1", res.Iterations)
	}
	if res.KBeforeMerge != res.K {
		t.Errorf("merge disabled but KBeforeMerge %d != K %d", res.KBeforeMerge, res.K)
	}
}

func TestRunSingleGaussianStopsAtOne(t *testing.T) {
	env, _ := newEnv(t, dataset.Spec{K: 1, Dim: 3, N: 5000, Seed: 3}, 128<<10, smallCluster())
	res, err := Run(Config{Env: env, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Errorf("single Gaussian split into k=%d", res.K)
	}
	// One accept per confirmation round (default 2).
	if res.Iterations != 2 {
		t.Errorf("iterations = %d, want 2 (ConfirmRounds)", res.Iterations)
	}
}

// Regression: datasets smaller than the 2·InitialClusters seeding sample
// previously failed with "dataset has only 1 points, need 2 samples". The
// seeding now pads the sample by pairing points with themselves, so the run
// degrades to the trivial clustering instead of erroring.
func TestRunTinyDatasets(t *testing.T) {
	stage := func(lines string, dim int) kmeansmr.Env {
		fs := dfs.New(1 << 10)
		w := fs.Writer("/tiny.txt")
		w.WriteString(lines)
		w.Close()
		return kmeansmr.Env{FS: fs, Cluster: smallCluster(), Input: "/tiny.txt", Dim: dim}
	}

	t.Run("single-point", func(t *testing.T) {
		res, err := Run(Config{Env: stage("1.5 -2.25\n", 2), Seed: 7, MaxK: 12})
		if err != nil {
			t.Fatal(err)
		}
		if res.K != 1 {
			t.Fatalf("single point clustered into k=%d", res.K)
		}
		if got := res.Centers[0]; got[0] != 1.5 || got[1] != -2.25 {
			t.Errorf("center = %v, want the lone point", got)
		}
	})

	t.Run("two-points", func(t *testing.T) {
		res, err := Run(Config{Env: stage("0 0\n10 10\n", 2), Seed: 7, MaxK: 12})
		if err != nil {
			t.Fatal(err)
		}
		if res.K < 1 || res.K > 2 {
			t.Fatalf("two points clustered into k=%d", res.K)
		}
	})

	t.Run("three-points", func(t *testing.T) {
		res, err := Run(Config{Env: stage("0 0\n10 0\n0 10\n", 2), Seed: 7, MaxK: 12})
		if err != nil {
			t.Fatal(err)
		}
		if res.K < 1 || res.K > 3 {
			t.Fatalf("three points clustered into k=%d", res.K)
		}
		for _, c := range res.Centers {
			for _, x := range c {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("non-finite center %v", c)
				}
			}
		}
	})
}

func TestRunDeterministicWithSeed(t *testing.T) {
	env, _ := newEnv(t, dataset.Spec{K: 4, Dim: 2, N: 4000, MinSeparation: 20, Seed: 5}, 64<<10, smallCluster())
	a, err := Run(Config{Env: env, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Env: env, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K || a.Iterations != b.Iterations {
		t.Fatalf("same-seed runs differ: k=%d/%d iters=%d/%d", a.K, b.K, a.Iterations, b.Iterations)
	}
	for i := range a.Centers {
		if !vec.ApproxEqual(a.Centers[i], b.Centers[i], 1e-12) {
			t.Fatalf("center %d differs across same-seed runs", i)
		}
	}
}

func TestRunCentersAreNearCentroids(t *testing.T) {
	// Invariant: every final center should be close to the centroid of the
	// points assigned to it (it was produced by a k-means pass).
	env, ds := newEnv(t, dataset.Spec{K: 5, Dim: 2, N: 8000, MinSeparation: 20, Seed: 6}, 128<<10, smallCluster())
	res, err := Run(Config{Env: env, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	assign := lloyd.Assign(ds.Points, res.Centers)
	groups := make(map[int][]vec.Vector)
	for i, a := range assign {
		groups[a] = append(groups[a], ds.Points[i])
	}
	total := 0
	for c, members := range groups {
		total += len(members)
		centroid := vec.Mean(members)
		// The final centers come from the parent iteration, so allow a few
		// sigma of slack rather than exact equality.
		if vec.Dist(centroid, res.Centers[c]) > 3 {
			t.Errorf("center %d is %.2f from its assignment centroid", c, vec.Dist(centroid, res.Centers[c]))
		}
	}
	if total != len(ds.Points) {
		t.Errorf("assignment covers %d of %d points", total, len(ds.Points))
	}
}

func TestRunMaxKCap(t *testing.T) {
	env, _ := newEnv(t, dataset.Spec{K: 16, Dim: 2, N: 8000, MinSeparation: 12, Seed: 8}, 128<<10, smallCluster())
	res, err := Run(Config{Env: env, Seed: 3, MaxK: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 6 {
		t.Errorf("MaxK=6 but discovered %d", res.K)
	}
}

func TestRunMaxIterationsCap(t *testing.T) {
	env, _ := newEnv(t, dataset.Spec{K: 8, Dim: 2, N: 6000, MinSeparation: 15, Seed: 9}, 128<<10, smallCluster())
	res, err := Run(Config{Env: env, Seed: 4, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Errorf("iterations = %d beyond cap", res.Iterations)
	}
	if res.K < 1 {
		t.Error("no centers despite cap")
	}
}

func TestRunForcedStrategies(t *testing.T) {
	for _, strat := range []TestStrategy{StrategyFewClusters, StrategyReducer} {
		env, _ := newEnv(t, dataset.Spec{K: 4, Dim: 2, N: 6000, MinSeparation: 20, Seed: 10}, 128<<10, smallCluster())
		res, err := Run(Config{Env: env, Seed: 5, ForceStrategy: strat})
		if err != nil {
			t.Fatalf("strategy %s: %v", strat, err)
		}
		if res.K < 4 || res.K > 8 {
			t.Errorf("strategy %s found k=%d, want [4,8]", strat, res.K)
		}
		for _, it := range res.PerIteration {
			if it.Strategy != strat && it.Strategy != "capped" {
				t.Errorf("iteration used %s, forced %s", it.Strategy, strat)
			}
		}
	}
}

func TestStrategySwitchRule(t *testing.T) {
	cfg := Config{}.withDefaults()
	cfg.Cluster = smallCluster() // reduce capacity = 8, plannable heap = 0.66×64MB
	const bigCluster = 100_000   // per-split samples stay decidable with 10 splits
	// Few clusters: stays mapper-side.
	if got := chooseStrategy(cfg, 2, 1000, bigCluster, 10); got != StrategyFewClusters {
		t.Errorf("2 clusters: %s", got)
	}
	// Many clusters, heap fits: switches to reducer-side.
	if got := chooseStrategy(cfg, 10, 1000, bigCluster, 10); got != StrategyReducer {
		t.Errorf("10 clusters, small heap: %s", got)
	}
	// Many clusters but biggest cluster would blow the plannable heap:
	// stays mapper-side.
	if got := chooseStrategy(cfg, 10, cfg.Cluster.PlannableHeap()+1, bigCluster, 10); got != StrategyFewClusters {
		t.Errorf("10 clusters, huge heap: %s", got)
	}
	// Small-data correctness guard: the smallest cluster cannot give every
	// mapper a decidable sample, so the reducer-side test takes over even
	// below the capacity threshold.
	if got := chooseStrategy(cfg, 2, 1000, 100, 10); got != StrategyReducer {
		t.Errorf("undersampled clusters: %s", got)
	}
	// ... unless the heap cannot take it.
	if got := chooseStrategy(cfg, 2, cfg.Cluster.PlannableHeap()+1, 100, 10); got != StrategyFewClusters {
		t.Errorf("undersampled clusters, huge heap: %s", got)
	}
	// Forced pin wins.
	cfg.ForceStrategy = StrategyReducer
	if got := chooseStrategy(cfg, 1, 1, bigCluster, 10); got != StrategyReducer {
		t.Errorf("forced: %s", got)
	}
}

// TestReducerStrategyHeapFailure reproduces the paper's Figure 2 failure
// mode: a reducer-side test on a single huge cluster with a tiny task heap
// dies with the engine's Java-heap-space error.
func TestReducerStrategyHeapFailure(t *testing.T) {
	cl := smallCluster()
	cl.TaskHeapBytes = 32 << 10 // 32 KB ⇒ capacity for ~512 points at 64 B/pt
	env, _ := newEnv(t, dataset.Spec{K: 2, Dim: 2, N: 4000, MinSeparation: 40, Seed: 11}, 64<<10, cl)
	_, err := Run(Config{Env: env, Seed: 6, ForceStrategy: StrategyReducer})
	if !errors.Is(err, mr.ErrHeapSpace) {
		t.Fatalf("err = %v, want ErrHeapSpace", err)
	}
}

func TestRunMergePostProcessing(t *testing.T) {
	env, _ := newEnv(t, dataset.Spec{K: 10, Dim: 2, N: 20000, MinSeparation: 15, Seed: 42}, 256<<10, smallCluster())
	plain, err := Run(Config{Env: env, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Run(Config{Env: env, Seed: 7, MergeRadius: 3})
	if err != nil {
		t.Fatal(err)
	}
	if merged.KBeforeMerge != plain.K {
		t.Errorf("KBeforeMerge = %d, want %d", merged.KBeforeMerge, plain.K)
	}
	if merged.K > plain.K {
		t.Errorf("merging increased k: %d > %d", merged.K, plain.K)
	}
}

func TestRunValidation(t *testing.T) {
	env, _ := newEnv(t, dataset.Spec{K: 2, Dim: 2, N: 100, Seed: 12}, 0, smallCluster())
	bad := Config{Env: env, Alpha: 2}
	if _, err := Run(bad); err == nil {
		t.Error("alpha=2 accepted")
	}
	bad = Config{Env: env}
	bad.Dim = 0
	if _, err := Run(bad); err == nil {
		t.Error("dim=0 accepted")
	}
}

func TestRunCountersPopulated(t *testing.T) {
	env, _ := newEnv(t, dataset.Spec{K: 4, Dim: 2, N: 4000, MinSeparation: 20, Seed: 13}, 128<<10, smallCluster())
	env.FS.ResetCounters()
	res, err := Run(Config{Env: env, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get(kmeansmr.CounterDistances) == 0 {
		t.Error("no distance computations recorded")
	}
	if res.Counters.Get(CounterADTests) == 0 {
		t.Error("no AD tests recorded")
	}
	if res.Counters.Get(CounterProjections) == 0 {
		t.Error("no projections recorded")
	}
	// The paper: 3 jobs per iteration + 1 sampling read.
	wantReads := int64(1 + 3*res.Iterations)
	if got := env.FS.DatasetReads(); got != wantReads {
		t.Errorf("dataset reads = %d, want %d (1 + 3×%d iterations)", got, wantReads, res.Iterations)
	}
}

func TestRunPerIterationSnapshots(t *testing.T) {
	env, _ := newEnv(t, dataset.Spec{K: 4, Dim: 2, N: 4000, MinSeparation: 20, Seed: 14}, 128<<10, smallCluster())
	res, err := Run(Config{Env: env, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerIteration) != res.Iterations {
		t.Fatalf("per-iteration records = %d, want %d", len(res.PerIteration), res.Iterations)
	}
	for i, it := range res.PerIteration {
		if it.Iteration != i+1 {
			t.Errorf("iteration %d numbered %d", i, it.Iteration)
		}
		if len(it.Centers) == 0 {
			t.Errorf("iteration %d has empty center snapshot", i)
		}
		if it.Duration <= 0 {
			t.Errorf("iteration %d has non-positive duration", i)
		}
	}
	last := res.PerIteration[len(res.PerIteration)-1]
	if last.FoundAfter != res.KBeforeMerge {
		t.Errorf("last FoundAfter = %d, want %d", last.FoundAfter, res.KBeforeMerge)
	}
}

func TestRunDistancesLinearInK(t *testing.T) {
	// The headline claim: G-means costs O(nk) distances. Quadrupling true
	// k on the same n should multiply distances by ≈4 (plus the extra
	// log₂ iterations), nowhere near the ≈16× a quadratic algorithm pays.
	counts := map[int]int64{}
	for _, k := range []int{8, 32} {
		env, _ := newEnv(t, dataset.Spec{K: k, Dim: 2, N: 16000, MinSeparation: 12, Seed: 21}, 256<<10, smallCluster())
		res, err := Run(Config{Env: env, Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		counts[k] = res.Counters.Get(kmeansmr.CounterDistances)
	}
	ratio := float64(counts[32]) / float64(counts[8])
	if ratio > 9 {
		t.Errorf("distance growth ratio %.2f for 4× k suggests super-linear cost (8 → %d, 32 → %d)",
			ratio, counts[8], counts[32])
	}
}

func TestVotePolicies(t *testing.T) {
	for _, v := range []VotePolicy{VoteMajority, VoteAll, VoteAny} {
		env, _ := newEnv(t, dataset.Spec{K: 3, Dim: 2, N: 3000, MinSeparation: 25, Seed: 15}, 64<<10, smallCluster())
		res, err := Run(Config{Env: env, Seed: 11, Vote: v, ForceStrategy: StrategyFewClusters})
		if err != nil {
			t.Fatalf("vote %s: %v", v, err)
		}
		if res.K < 3 {
			t.Errorf("vote %s under-split: k=%d", v, res.K)
		}
	}
	if VoteAll.String() != "all" || VoteAny.String() != "any" || VoteMajority.String() != "majority" {
		t.Error("VotePolicy.String wrong")
	}
}

func TestMergeCloseCenters(t *testing.T) {
	centers := []vec.Vector{{0, 0}, {0.5, 0}, {10, 10}, {10, 10.4}, {50, 50}}
	got := MergeCloseCenters(centers, 1)
	if len(got) != 3 {
		t.Fatalf("merged to %d centers, want 3: %v", len(got), got)
	}
	// Chained merging (single linkage): a—b—c with gaps < radius collapse
	// into one.
	chain := []vec.Vector{{0}, {0.9}, {1.8}}
	if got := MergeCloseCenters(chain, 1); len(got) != 1 {
		t.Errorf("chain merged to %d, want 1", len(got))
	}
	// No-ops.
	if got := MergeCloseCenters(centers, 0); len(got) != 5 {
		t.Error("radius 0 should disable merging")
	}
	if got := MergeCloseCenters(centers[:1], 10); len(got) != 1 {
		t.Error("single center should pass through")
	}
}

func TestMergeCloseCentersMean(t *testing.T) {
	got := MergeCloseCenters([]vec.Vector{{0, 0}, {2, 0}}, 3)
	if len(got) != 1 || !vec.ApproxEqual(got[0], vec.Vector{1, 0}, 1e-12) {
		t.Errorf("merge mean = %v", got)
	}
}

func TestSuggestMergeRadius(t *testing.T) {
	if got := SuggestMergeRadius(nil); got != 0 {
		t.Errorf("radius of no centers = %v", got)
	}
	if got := SuggestMergeRadius([]vec.Vector{{0}}); got != 0 {
		t.Errorf("radius of one center = %v", got)
	}
	if got := SuggestMergeRadius([]vec.Vector{{0}, {1}}); got != 0 {
		t.Errorf("two centers are ambiguous, radius = %v, want 0", got)
	}
	// Two doubled pairs 100 apart: the radius must land between the pair
	// scale (1) and the cluster scale (100), so merging collapses each
	// pair but not the pairs into each other.
	centers := []vec.Vector{{0}, {1}, {100}, {101}}
	got := SuggestMergeRadius(centers)
	if got <= 1 || got >= 99 {
		t.Fatalf("radius = %v, want within (1, 99)", got)
	}
	if merged := MergeCloseCenters(centers, got); len(merged) != 2 {
		t.Errorf("merged to %d centers, want 2", len(merged))
	}
	// A clean, well-separated center set suggests no merging at all.
	clean := []vec.Vector{{0, 0}, {50, 0}, {0, 50}, {50, 50}}
	if got := SuggestMergeRadius(clean); got != 0 {
		t.Errorf("clean set radius = %v, want 0", got)
	}
	// Mixed: one doubled pair among singles still gets merged.
	mixed := []vec.Vector{{0, 0}, {2, 0}, {50, 0}, {0, 50}, {50, 50}}
	r := SuggestMergeRadius(mixed)
	if r <= 2 || r >= 48 {
		t.Fatalf("mixed radius = %v, want within (2, 48)", r)
	}
	if merged := MergeCloseCenters(mixed, r); len(merged) != 4 {
		t.Errorf("mixed merged to %d centers, want 4", len(merged))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.InitialClusters != 1 || c.Alpha != 0.0001 || c.KMeansIterations != 2 ||
		c.MaxIterations != 30 || c.MinTestSamples != DefaultMinTestSamples ||
		c.MinClusterSize != 2*DefaultMinTestSamples {
		t.Errorf("defaults = %+v", c)
	}
}

func TestOffsetValue(t *testing.T) {
	if Offset != int64(1)<<62 {
		t.Errorf("Offset = %d, want 2^62 as in the paper", Offset)
	}
}

// TestRunKDTreeEquivalence: the mrkd-tree acceleration must not change any
// decision — identical centers, fewer or equal distance computations.
func TestRunKDTreeEquivalence(t *testing.T) {
	spec := dataset.Spec{K: 8, Dim: 3, N: 8000, MinSeparation: 20, Seed: 51}
	env, _ := newEnv(t, spec, 128<<10, smallCluster())
	plain, err := Run(Config{Env: env, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	envTree := env
	envTree.UseKDTree = true
	accel, err := Run(Config{Env: envTree, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	if plain.K != accel.K {
		t.Fatalf("kd-tree changed k: %d vs %d", plain.K, accel.K)
	}
	for i := range plain.Centers {
		if !vec.ApproxEqual(plain.Centers[i], accel.Centers[i], 1e-12) {
			t.Fatalf("kd-tree changed center %d", i)
		}
	}
	pd := plain.Counters.Get(kmeansmr.CounterDistances)
	ad := accel.Counters.Get(kmeansmr.CounterDistances)
	if ad > pd {
		t.Errorf("kd-tree increased distance computations: %d > %d", ad, pd)
	}
}

// TestConfirmRoundsAblation: single-accept freezing (the paper's literal
// Algorithm 1) must never *beat* the confirmed variant on cluster coverage.
func TestConfirmRoundsAblation(t *testing.T) {
	spec := dataset.Spec{K: 32, Dim: 10, N: 16000, MinSeparation: 8, Seed: 53}
	covered := map[int]int{}
	for _, confirm := range []int{1, 2} {
		env, ds := newEnv(t, spec, 256<<10, smallCluster())
		res, err := Run(Config{Env: env, Seed: 54, ConfirmRounds: confirm})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, truth := range ds.Centers {
			if _, d2 := vec.NearestIndex(truth, res.Centers); d2 <= 9 {
				n++
			}
		}
		covered[confirm] = n
	}
	if covered[1] > covered[2] {
		t.Errorf("confirmation hurt coverage: confirm=1 %d vs confirm=2 %d", covered[1], covered[2])
	}
}

// TestRunPCACandidates: the PCA candidate policy (the paper's "additional
// MapReduce job" variant) must also recover k, and must pay one extra
// dataset read per round.
func TestRunPCACandidates(t *testing.T) {
	spec := dataset.Spec{K: 8, Dim: 3, N: 8000, MinSeparation: 20, Seed: 71}
	env, ds := newEnv(t, spec, 128<<10, smallCluster())
	env.FS.ResetCounters()
	res, err := Run(Config{Env: env, Seed: 72, Candidates: CandidatesPCA})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 8 || res.K > 14 {
		t.Fatalf("PCA candidates found k=%d for true k=8", res.K)
	}
	for _, truth := range ds.Centers {
		_, d2 := vec.NearestIndex(truth, res.Centers)
		if math.Sqrt(d2) > 4 {
			t.Errorf("no center near truth %v", truth)
		}
	}
	// 1 sampling read + 4 jobs per round (kmeans, last kmeans, pca, test).
	wantReads := int64(1 + 4*res.Iterations)
	if got := env.FS.DatasetReads(); got != wantReads {
		t.Errorf("dataset reads = %d, want %d (PCA pays one extra per round)", got, wantReads)
	}
}

func TestCandidatePolicyString(t *testing.T) {
	if CandidatesRandom.String() != "random" || CandidatesPCA.String() != "pca" {
		t.Error("CandidatePolicy.String wrong")
	}
}
