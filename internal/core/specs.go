package core

import (
	"fmt"

	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/mrdist"
	"gmeansmr/internal/vec"
)

// This file registers the G-means jobs with the distributed backend: each
// job constructor attaches an mr.JobSpec, and the builders below rebuild
// the identical factories from its payload inside a worker process. Both
// the driver and the worker binary (cmd/mrworker) link this package, so
// the kind names resolve on both sides. Payloads use the GMWR encoding of
// docs/wire.md.

// Job kind names registered by this package.
const (
	KindKFNC = "gmeans.kfnc"
	KindTest = "gmeans.test"
	KindPCA  = "gmeans.pca"
)

// TagCovValue is the wire tag of the PCA candidate job's covariance
// statistics.
const TagCovValue = mrdist.TagAppBase + 1 // 17

func init() {
	mrdist.RegisterValueCodec(TagCovValue, mrdist.ValueCodec{
		Encode: func(e *mrdist.Encoder, v mr.Value) bool {
			cv, ok := v.(covValue)
			if !ok {
				return false
			}
			e.Vec(cv.Sum).Vec(vec.Vector(cv.Outer)).I64(cv.Count)
			return true
		},
		Decode: func(d *mrdist.Decoder) mr.Value {
			return covValue{Sum: d.Vec(), Outer: []float64(d.Vec()), Count: d.I64()}
		},
	})
	mrdist.RegisterKind(KindKFNC, buildKFNC)
	mrdist.RegisterKind(KindTest, buildTest)
	mrdist.RegisterKind(KindPCA, buildPCA)
}

// kfncSpec encodes the KMeansAndFindNewCenters job: the candidate-pick
// seed, whether the combiner ablation is active, and the current centers.
func kfncSpec(cfg Config, centers []vec.Vector, round int) *mr.JobSpec {
	e := new(mrdist.Encoder).Begin()
	kmeansmr.EncodeEnvSpec(e, cfg.Env)
	e.I64(cfg.Seed + int64(round)).Bool(cfg.DisableCombiners)
	kmeansmr.EncodeCenters(e, centers)
	return &mr.JobSpec{Kind: KindKFNC, Payload: e.Bytes()}
}

func buildKFNC(payload []byte) (mrdist.JobParts, error) {
	d := mrdist.NewDecoder(payload)
	env := kmeansmr.DecodeEnvSpec(d)
	seed := d.I64()
	noCombiners := d.Bool()
	centers := kmeansmr.DecodeCenters(d)
	if err := d.Err(); err != nil {
		return mrdist.JobParts{}, fmt.Errorf("core: bad %s payload: %w", KindKFNC, err)
	}
	nearest := env.NearestFunc(centers)
	parts := mrdist.JobParts{
		NewReducer: func() mr.Reducer { return &kfncReducer{seed: seed} },
	}
	if noCombiners {
		parts.NewPointMapper = func() mr.PointMapper {
			return &legacyKFNCMapper{env: env, centers: centers, nearest: nearest}
		}
	} else {
		parts.NewPointMapper = func() mr.PointMapper {
			return &kfncMapper{env: env, centers: centers, nearest: nearest}
		}
		parts.NewCombiner = func() mr.Reducer { return &kfncReducer{seed: seed} }
	}
	return parts, nil
}

// testSpec encodes a normality-test job: the strategy, the test
// parameters, and the per-cluster geometry (parents plus the split vector
// of each active cluster).
func testSpec(cfg Config, strategy TestStrategy, parents []vec.Vector, foundCount int, vectors []vec.Vector) *mr.JobSpec {
	e := new(mrdist.Encoder).Begin()
	kmeansmr.EncodeEnvSpec(e, cfg.Env)
	e.Str(string(strategy))
	e.F64(cfg.Alpha).U32(uint32(cfg.MinTestSamples)).U8(byte(cfg.Vote))
	e.U32(uint32(foundCount))
	kmeansmr.EncodeCenters(e, parents)
	kmeansmr.EncodeCenters(e, vectors)
	return &mr.JobSpec{Kind: KindTest, Payload: e.Bytes()}
}

func buildTest(payload []byte) (mrdist.JobParts, error) {
	d := mrdist.NewDecoder(payload)
	env := kmeansmr.DecodeEnvSpec(d)
	strategy := TestStrategy(d.Str())
	alpha := d.F64()
	minN := int(d.U32())
	vote := VotePolicy(d.U8())
	foundCount := int(d.U32())
	parents := kmeansmr.DecodeCenters(d)
	vectors := kmeansmr.DecodeCenters(d)
	if err := d.Err(); err != nil {
		return mrdist.JobParts{}, fmt.Errorf("core: bad %s payload: %w", KindTest, err)
	}
	nearest := env.NearestFunc(parents)
	switch strategy {
	case StrategyReducer:
		return mrdist.JobParts{
			NewPointMapper: func() mr.PointMapper {
				return &testMapper{env: env, parents: parents, foundCount: foundCount,
					vectors: vectors, nearest: nearest}
			},
			NewReducer: func() mr.Reducer { return &testReducer{alpha: alpha, minN: minN} },
		}, nil
	case StrategyFewClusters:
		return mrdist.JobParts{
			NewPointMapper: func() mr.PointMapper {
				return &fewMapper{env: env, parents: parents, foundCount: foundCount,
					vectors: vectors, alpha: alpha, minN: minN, nearest: nearest}
			},
			NewReducer: func() mr.Reducer { return &fewReducer{vote: vote} },
		}, nil
	default:
		return mrdist.JobParts{}, fmt.Errorf("core: unknown test strategy %q in %s payload", strategy, KindTest)
	}
}

// pcaSpec encodes the PCA candidate-selection job.
func pcaSpec(cfg Config, centers []vec.Vector, round int) *mr.JobSpec {
	e := new(mrdist.Encoder).Begin()
	kmeansmr.EncodeEnvSpec(e, cfg.Env)
	e.I64(cfg.Seed + int64(round))
	kmeansmr.EncodeCenters(e, centers)
	return &mr.JobSpec{Kind: KindPCA, Payload: e.Bytes()}
}

func buildPCA(payload []byte) (mrdist.JobParts, error) {
	d := mrdist.NewDecoder(payload)
	env := kmeansmr.DecodeEnvSpec(d)
	seed := d.I64()
	centers := kmeansmr.DecodeCenters(d)
	if err := d.Err(); err != nil {
		return mrdist.JobParts{}, fmt.Errorf("core: bad %s payload: %w", KindPCA, err)
	}
	nearest := env.NearestFunc(centers)
	return mrdist.JobParts{
		NewPointMapper: func() mr.PointMapper {
			return &pcaMapper{env: env, centers: centers, nearest: nearest}
		},
		NewReducer: func() mr.Reducer { return &pcaReducer{seed: seed} },
	}, nil
}
