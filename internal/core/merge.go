package core

import (
	"math"

	"gmeansmr/internal/vec"
)

// MergeCloseCenters implements the post-processing step the paper leaves
// as future work: "the MapReduce version analyzes all clusters in parallel
// and will thus try to double the number of centers at each iteration. As
// a result, it may eventually overestimate the value of k. Future versions
// of the algorithm will thus add a post-processing step to merge close
// centers."
//
// It performs single-linkage agglomeration: centers at distance ≤ radius
// are connected, and every connected component is replaced by its mean.
// The cost is O(k²) on the *center* set only — k is orders of magnitude
// smaller than n, so this runs on the driver exactly like the serial
// PickInitialCenters step.
func MergeCloseCenters(centers []vec.Vector, radius float64) []vec.Vector {
	n := len(centers)
	if n <= 1 || radius <= 0 {
		return centers
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if vec.Dist2(centers[i], centers[j]) <= r2 {
				union(i, j)
			}
		}
	}
	groups := make(map[int][]vec.Vector)
	order := make([]int, 0, n)
	for i, c := range centers {
		root := find(i)
		if _, seen := groups[root]; !seen {
			order = append(order, root)
		}
		groups[root] = append(groups[root], c)
	}
	out := make([]vec.Vector, 0, len(groups))
	for _, root := range order {
		out = append(out, vec.Mean(groups[root]))
	}
	return out
}

// SuggestMergeRadius proposes a merge radius from the centers themselves.
// Over-estimation plants groups of extra centers inside single clusters
// (pairs from one spurious split, whole blobs from a split cascade), so
// the minimum-spanning-tree of the center set has two edge populations:
// short intra-blob edges at the within-cluster scale and long bridges at
// the genuine inter-cluster scale. The radius is placed inside the largest
// multiplicative gap of the sorted MST edge weights (geometric mean of the
// gap's endpoints) when the gap is pronounced (≥3×); a center set without
// such a gap — no redundant centers — yields 0, i.e. nothing to merge.
//
// Because MergeCloseCenters is single-linkage, any radius inside the gap
// collapses every blob to one center while leaving distinct clusters
// untouched, so the exact position within the gap is uncritical.
func SuggestMergeRadius(centers []vec.Vector) float64 {
	n := len(centers)
	if n < 3 {
		// With fewer than three centers the blob/cluster scales cannot be
		// told apart; merging would be guesswork.
		return 0
	}
	// Prim's algorithm, O(k²): k is a center count, not a point count.
	inTree := make([]bool, n)
	minEdge := make([]float64, n)
	for i := range minEdge {
		minEdge[i] = math.Inf(1)
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		minEdge[j] = vec.Dist2(centers[0], centers[j])
	}
	edges := make([]float64, 0, n-1)
	for len(edges) < n-1 {
		best, bestD := -1, math.Inf(1)
		for j := range centers {
			if !inTree[j] && minEdge[j] < bestD {
				best, bestD = j, minEdge[j]
			}
		}
		if best < 0 {
			break
		}
		inTree[best] = true
		edges = append(edges, math.Sqrt(bestD))
		for j := range centers {
			if !inTree[j] {
				if d := vec.Dist2(centers[best], centers[j]); d < minEdge[j] {
					minEdge[j] = d
				}
			}
		}
	}
	sortFloats(edges)
	// Largest multiplicative gap between consecutive MST edge weights.
	const gapThreshold = 3
	bestRatio, bestIdx := 1.0, -1
	for i := 0; i < len(edges)-1; i++ {
		lo := edges[i]
		if lo == 0 {
			lo = 1e-12 // coincident centers: any positive edge is a gap
		}
		if r := edges[i+1] / lo; r > bestRatio {
			bestRatio, bestIdx = r, i
		}
	}
	if bestIdx < 0 || bestRatio < gapThreshold {
		return 0
	}
	lo := edges[bestIdx]
	if lo == 0 {
		return edges[bestIdx+1] / 4
	}
	return math.Sqrt(lo * edges[bestIdx+1])
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func median(xs []float64) float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	// Insertion sort: center counts are small.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	m := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[m]
	}
	return 0.5 * (cp[m-1] + cp[m])
}
