// Package faultinject is a deterministic, scenario-scripted fault plane
// for the distributed backend. A Scenario is a seedable list of rules
// ("the third POST to /v1/task/map returns a 500", "every shuffle fetch
// gains 40ms of latency"); an Injector compiled from it wraps either the
// master's outbound HTTP transport (Transport) or the worker's inbound
// mux (Middleware) and perturbs matching requests.
//
// The plane is off by default and free when off: a nil *Injector's
// Transport and Middleware return their argument unchanged, so production
// paths carry no wrapper at all. Scenarios serialize to JSON and travel
// to worker subprocesses through the MRDIST_FAULT_SCENARIO environment
// variable, which RunWorker consults before serving.
//
// Determinism: probabilistic rules draw from a rand.Rand seeded with
// Scenario.Seed, and rule bookkeeping (Skip/Count) is sequential under a
// lock, so a scenario replays identically given the same request order.
// The chaos harness (cmd/stress) prints the seed of a failing scenario
// precisely so it can be re-run.
package faultinject

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvScenario carries a JSON-encoded Scenario to worker subprocesses.
const EnvScenario = "MRDIST_FAULT_SCENARIO"

// Kind names one fault shape.
type Kind string

// Fault kinds. All apply to both the master-side Transport and the
// worker-side Middleware except where noted.
const (
	// KindRefuse fails the request before any bytes move: the transport
	// synthesizes a dial error, the middleware aborts the connection.
	KindRefuse Kind = "refuse"
	// KindLatency delays the request by Latency, then proceeds normally.
	KindLatency Kind = "latency"
	// KindTruncate lets the response begin, then cuts it mid-body so the
	// reader sees an unexpected EOF inside a GMWR frame.
	KindTruncate Kind = "truncate"
	// KindCorrupt flips response-body bytes past the status byte, turning
	// a well-formed reply into a corrupt GMWR frame.
	KindCorrupt Kind = "corrupt"
	// KindHTTP500 answers with a synthesized 500 without doing the work.
	KindHTTP500 Kind = "http500"
	// KindHang stalls the request: for Latency if set, else until the
	// request's context is cancelled. Either way no response arrives
	// before the caller's per-try deadline.
	KindHang Kind = "hang"
	// KindKill terminates the worker process abruptly (middleware only;
	// the transport passes it through).
	KindKill Kind = "kill"
)

// Rule scripts one fault against matching requests. Rules are evaluated
// in order; the first rule that matches and admits a request injects.
type Rule struct {
	// Match is a URL-path substring ("" matches every request).
	Match string `json:"match,omitempty"`
	// Kind selects the fault shape.
	Kind Kind `json:"kind"`
	// Prob is the per-request injection probability in (0, 1]; zero
	// means always (deterministic scenarios are the common case).
	Prob float64 `json:"prob,omitempty"`
	// Skip passes through this many matching requests before the rule
	// starts injecting ("the fourth push fails").
	Skip int `json:"skip,omitempty"`
	// Count caps total injections by this rule; zero means unlimited
	// ("a burst of three 5xx, then healthy").
	Count int `json:"count,omitempty"`
	// Latency is the delay for KindLatency and the stall bound for
	// KindHang, in milliseconds (so scenarios stay JSON-friendly).
	Latency int `json:"latency_ms,omitempty"`
}

func (r Rule) delay() time.Duration {
	if r.Latency <= 0 {
		return 25 * time.Millisecond
	}
	return time.Duration(r.Latency) * time.Millisecond
}

// Scenario is a named, seeded fault script.
type Scenario struct {
	Name  string `json:"name"`
	Seed  int64  `json:"seed,omitempty"`
	Rules []Rule `json:"rules"`
}

// Marshal encodes the scenario for EnvScenario.
func (sc Scenario) Marshal() (string, error) {
	b, err := json.Marshal(sc)
	if err != nil {
		return "", fmt.Errorf("faultinject: marshal scenario %q: %w", sc.Name, err)
	}
	return string(b), nil
}

// ParseScenario decodes a Marshal-encoded scenario.
func ParseScenario(s string) (Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal([]byte(s), &sc); err != nil {
		return Scenario{}, fmt.Errorf("faultinject: parse scenario: %w", err)
	}
	return sc, nil
}

// Injector applies a scenario to requests. The zero of *Injector (nil)
// is a valid, free no-op.
type Injector struct {
	scenario Scenario

	mu    sync.Mutex
	rng   *rand.Rand
	seen  []int // matching requests observed per rule (drives Skip)
	fired []int // injections performed per rule (drives Count)

	total atomic.Int64
}

// New compiles a scenario. A scenario with no rules yields a nil
// Injector, keeping the hot path wrapper-free.
func New(sc Scenario) *Injector {
	if len(sc.Rules) == 0 {
		return nil
	}
	return &Injector{
		scenario: sc,
		rng:      rand.New(rand.NewSource(sc.Seed)),
		seen:     make([]int, len(sc.Rules)),
		fired:    make([]int, len(sc.Rules)),
	}
}

// FromEnv compiles the scenario in EnvScenario, if any. It returns nil
// when the variable is unset or empty; a malformed value is an error so
// a chaos run never silently degrades to a fault-free one.
func FromEnv() (*Injector, error) {
	raw := os.Getenv(EnvScenario)
	if raw == "" {
		return nil, nil
	}
	sc, err := ParseScenario(raw)
	if err != nil {
		return nil, err
	}
	return New(sc), nil
}

// Scenario returns the compiled scenario (zero for nil).
func (in *Injector) Scenario() Scenario {
	if in == nil {
		return Scenario{}
	}
	return in.scenario
}

// Injections reports the total number of faults injected so far.
func (in *Injector) Injections() int64 {
	if in == nil {
		return 0
	}
	return in.total.Load()
}

// RuleInjections reports per-rule injection counts, index-aligned with
// Scenario().Rules.
func (in *Injector) RuleInjections() []int {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]int, len(in.fired))
	copy(out, in.fired)
	return out
}

// pick returns the first rule that matches path and admits an injection
// now, or nil. Bookkeeping and RNG draws happen under the lock so a
// seeded scenario is deterministic for a fixed request order.
func (in *Injector) pick(path string) *Rule {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.scenario.Rules {
		r := &in.scenario.Rules[i]
		if r.Match != "" && !strings.Contains(path, r.Match) {
			continue
		}
		in.seen[i]++
		if in.seen[i] <= r.Skip {
			continue
		}
		if r.Count > 0 && in.fired[i] >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
			continue
		}
		in.fired[i]++
		in.total.Add(1)
		return r
	}
	return nil
}

// ---- master side: http.RoundTripper ----

// Transport wraps base with the scenario. A nil Injector returns base
// unchanged; a nil base means http.DefaultTransport.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if in == nil {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{in: in, base: base}
}

type transport struct {
	in   *Injector
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	r := t.in.pick(req.URL.Path)
	if r == nil {
		return t.base.RoundTrip(req)
	}
	switch r.Kind {
	case KindRefuse:
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("faultinject: connection refused")}
	case KindLatency:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(r.delay()):
		}
		return t.base.RoundTrip(req)
	case KindHang:
		// Unlike latency, a hang never lets the request through: the
		// caller's deadline is the only exit.
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(10 * r.delay()):
			return nil, &net.OpError{Op: "read", Net: "tcp", Err: errors.New("faultinject: hang elapsed")}
		}
	case KindHTTP500:
		return &http.Response{
			Status:     "500 Internal Server Error",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader("faultinject: injected server error\n")),
			Request:    req,
		}, nil
	case KindTruncate:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &truncateBody{rc: resp.Body, remain: truncateAfter}
		resp.ContentLength = -1
		return resp, nil
	case KindCorrupt:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &corruptBody{rc: resp.Body}
		return resp, nil
	default: // KindKill has no transport meaning
		return t.base.RoundTrip(req)
	}
}

// truncateAfter is how many response bytes survive a truncation fault:
// past the status byte and into — but not through — the first GMWR
// frame's envelope, the nastiest place to cut.
const truncateAfter = 8

type truncateBody struct {
	rc     io.ReadCloser
	remain int
}

func (b *truncateBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= n
	if err == nil && b.remain <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncateBody) Close() error { return b.rc.Close() }

// corruptOffset preserves the leading status byte so corruption reads as
// "the worker answered, the frame is garbage" rather than a bad status.
const corruptOffset = 1

type corruptBody struct {
	rc  io.ReadCloser
	off int
}

func (b *corruptBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	for i := 0; i < n; i++ {
		if b.off+i >= corruptOffset {
			p[i] ^= 0xA5
		}
	}
	b.off += n
	return n, err
}

func (b *corruptBody) Close() error { return b.rc.Close() }

// ---- worker side: http middleware ----

// Middleware wraps next with the scenario. A nil Injector returns next
// unchanged.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	if in == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r := in.pick(req.URL.Path)
		if r == nil {
			next.ServeHTTP(w, req)
			return
		}
		switch r.Kind {
		case KindRefuse:
			panic(http.ErrAbortHandler)
		case KindLatency:
			select {
			case <-req.Context().Done():
				panic(http.ErrAbortHandler)
			case <-time.After(r.delay()):
			}
			next.ServeHTTP(w, req)
		case KindHang:
			// Stall without answering; the client's per-try deadline or
			// disconnect ends it, so worker goroutines don't pile up
			// past the caller's patience.
			select {
			case <-req.Context().Done():
			case <-time.After(10 * r.delay()):
			}
			panic(http.ErrAbortHandler)
		case KindHTTP500:
			http.Error(w, "faultinject: injected server error", http.StatusInternalServerError)
		case KindKill:
			os.Exit(137) // abrupt death, as if SIGKILLed
		case KindTruncate:
			next.ServeHTTP(&truncateWriter{w: w, remain: truncateAfter}, req)
		case KindCorrupt:
			next.ServeHTTP(&corruptWriter{w: w}, req)
		default:
			next.ServeHTTP(w, req)
		}
	})
}

// truncateWriter forwards the first remain bytes, flushes them onto the
// wire, then aborts the connection mid-response.
type truncateWriter struct {
	w      http.ResponseWriter
	remain int
}

func (t *truncateWriter) Header() http.Header { return t.w.Header() }

func (t *truncateWriter) WriteHeader(code int) { t.w.WriteHeader(code) }

func (t *truncateWriter) Write(p []byte) (int, error) {
	if t.remain <= 0 {
		panic(http.ErrAbortHandler)
	}
	if len(p) > t.remain {
		p = p[:t.remain]
	}
	n, err := t.w.Write(p)
	t.remain -= n
	if t.remain <= 0 {
		if f, ok := t.w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	return n, err
}

// corruptWriter XORs every body byte past the status byte.
type corruptWriter struct {
	w   http.ResponseWriter
	off int
}

func (c *corruptWriter) Header() http.Header { return c.w.Header() }

func (c *corruptWriter) WriteHeader(code int) { c.w.WriteHeader(code) }

func (c *corruptWriter) Write(p []byte) (int, error) {
	q := make([]byte, len(p))
	copy(q, p)
	for i := range q {
		if c.off+i >= corruptOffset {
			q[i] ^= 0xA5
		}
	}
	n, err := c.w.Write(q)
	c.off += n
	return n, err
}
