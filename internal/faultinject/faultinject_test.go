package faultinject

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// payload is what the backing handler serves: a status byte followed by
// body bytes, shaped like a worker reply.
var payload = append([]byte{0}, []byte("GMWRx123456789abcdef0123456789")...)

func backing() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(payload)
	})
}

// get issues a GET through a client whose transport is wrapped by in.
func get(t *testing.T, in *Injector, url, path string) ([]byte, *http.Response, error) {
	t.Helper()
	client := &http.Client{Transport: in.Transport(nil), Timeout: 2 * time.Second}
	resp, err := client.Get(url + path)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp, err
}

func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	base := http.DefaultTransport
	if got := in.Transport(base); got != base {
		t.Error("nil injector wrapped the transport")
	}
	next := http.NewServeMux() // comparable handler type
	if got := in.Middleware(next); got != http.Handler(next) {
		t.Error("nil injector wrapped the handler")
	}
	if in.Injections() != 0 || in.RuleInjections() != nil {
		t.Error("nil injector reported activity")
	}
	if New(Scenario{Name: "empty"}) != nil {
		t.Error("ruleless scenario compiled to a live injector")
	}
}

func TestScenarioEnvRoundTrip(t *testing.T) {
	sc := Scenario{
		Name: "mixed",
		Seed: 42,
		Rules: []Rule{
			{Match: "/v1/task", Kind: KindHTTP500, Count: 3},
			{Kind: KindLatency, Prob: 0.5, Latency: 40},
		},
	}
	enc, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseScenario(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != sc.Name || got.Seed != sc.Seed || len(got.Rules) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Rules[0] != sc.Rules[0] || got.Rules[1] != sc.Rules[1] {
		t.Fatalf("rules differ: %+v", got.Rules)
	}

	t.Setenv(EnvScenario, enc)
	in, err := FromEnv()
	if err != nil || in == nil {
		t.Fatalf("FromEnv: %v, %v", in, err)
	}
	if in.Scenario().Name != "mixed" {
		t.Errorf("FromEnv scenario = %q", in.Scenario().Name)
	}

	t.Setenv(EnvScenario, "")
	if in, err := FromEnv(); in != nil || err != nil {
		t.Errorf("empty env: %v, %v", in, err)
	}
	t.Setenv(EnvScenario, "{not json")
	if _, err := FromEnv(); err == nil {
		t.Error("malformed scenario did not error")
	}
}

func TestTransportHTTP500(t *testing.T) {
	srv := httptest.NewServer(backing())
	defer srv.Close()
	in := New(Scenario{Name: "burst", Rules: []Rule{{Kind: KindHTTP500, Count: 2}}})

	for i := 0; i < 2; i++ {
		_, resp, err := get(t, in, srv.URL, "/v1/task/map")
		if err != nil || resp.StatusCode != 500 {
			t.Fatalf("injected call %d: status=%v err=%v", i, resp, err)
		}
	}
	// Count exhausted: healthy again.
	body, resp, err := get(t, in, srv.URL, "/v1/task/map")
	if err != nil || resp.StatusCode != 200 || string(body) != string(payload) {
		t.Fatalf("post-burst call: status=%v err=%v body=%q", resp, err, body)
	}
	if in.Injections() != 2 {
		t.Errorf("injections = %d, want 2", in.Injections())
	}
}

func TestTransportRefuse(t *testing.T) {
	srv := httptest.NewServer(backing())
	defer srv.Close()
	in := New(Scenario{Name: "refuse", Rules: []Rule{{Kind: KindRefuse}}})
	_, _, err := get(t, in, srv.URL, "/v1/ping")
	var op *net.OpError
	if err == nil || !errors.As(err, &op) {
		t.Fatalf("err = %v, want net.OpError", err)
	}
}

func TestTransportTruncate(t *testing.T) {
	srv := httptest.NewServer(backing())
	defer srv.Close()
	in := New(Scenario{Name: "trunc", Rules: []Rule{{Kind: KindTruncate}}})
	body, _, err := get(t, in, srv.URL, "/v1/shuffle")
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
	if len(body) > truncateAfter {
		t.Errorf("read %d bytes through a truncation capped at %d", len(body), truncateAfter)
	}
}

func TestTransportCorrupt(t *testing.T) {
	srv := httptest.NewServer(backing())
	defer srv.Close()
	in := New(Scenario{Name: "corrupt", Rules: []Rule{{Kind: KindCorrupt}}})
	body, _, err := get(t, in, srv.URL, "/v1/task/reduce")
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != len(payload) {
		t.Fatalf("corrupt changed length: %d vs %d", len(body), len(payload))
	}
	if body[0] != payload[0] {
		t.Error("status byte was corrupted; it must survive")
	}
	if string(body[1:]) == string(payload[1:]) {
		t.Error("body bytes not corrupted")
	}
}

func TestTransportLatency(t *testing.T) {
	srv := httptest.NewServer(backing())
	defer srv.Close()
	in := New(Scenario{Name: "slow", Rules: []Rule{{Kind: KindLatency, Latency: 60}}})
	start := time.Now()
	body, _, err := get(t, in, srv.URL, "/v1/fs/push")
	if err != nil || string(body) != string(payload) {
		t.Fatalf("latency fault broke the request: %v", err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Errorf("request took %v, want >= 60ms", d)
	}
}

func TestTransportHangHitsDeadline(t *testing.T) {
	srv := httptest.NewServer(backing())
	defer srv.Close()
	in := New(Scenario{Name: "hang", Rules: []Rule{{Kind: KindHang, Latency: 10_000}}})
	client := &http.Client{Transport: in.Transport(nil), Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := client.Get(srv.URL + "/v1/task/map")
	if err == nil {
		t.Fatal("hang fault produced a response")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("hang outlived the client deadline: %v", d)
	}
}

func TestMatchSkipAndOrder(t *testing.T) {
	srv := httptest.NewServer(backing())
	defer srv.Close()
	in := New(Scenario{Name: "scoped", Rules: []Rule{
		{Match: "/v1/task", Kind: KindHTTP500, Skip: 1, Count: 1},
	}})

	// Non-matching path: untouched even though the rule is armed.
	if _, resp, err := get(t, in, srv.URL, "/v1/ping"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("non-matching path perturbed: %v %v", resp, err)
	}
	// First matching request is skipped.
	if _, resp, err := get(t, in, srv.URL, "/v1/task/map"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("skip not honored: %v %v", resp, err)
	}
	// Second matching request injects.
	if _, resp, err := get(t, in, srv.URL, "/v1/task/map"); err != nil || resp.StatusCode != 500 {
		t.Fatalf("armed rule did not fire: %v %v", resp, err)
	}
	if got := in.RuleInjections(); len(got) != 1 || got[0] != 1 {
		t.Errorf("rule injections = %v", got)
	}
}

func TestProbDeterministicUnderSeed(t *testing.T) {
	fire := func(seed int64) []bool {
		in := New(Scenario{Name: "p", Seed: seed, Rules: []Rule{{Kind: KindHTTP500, Prob: 0.5}}})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.pick("/x") != nil
		}
		return out
	}
	a, b := fire(11), fire(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	some, all := false, true
	for _, f := range a {
		some = some || f
		all = all && f
	}
	if !some || all {
		t.Errorf("prob=0.5 fired on all-or-none of 64 requests: some=%v all=%v", some, all)
	}
}

func TestMiddlewareHTTP500AndRecovery(t *testing.T) {
	in := New(Scenario{Name: "m500", Rules: []Rule{{Kind: KindHTTP500, Count: 1}}})
	srv := httptest.NewServer(in.Middleware(backing()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/task/map")
	if err != nil || resp.StatusCode != 500 {
		t.Fatalf("first call: %v %v", resp, err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/v1/task/map")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("second call: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestMiddlewareRefuseAbortsConnection(t *testing.T) {
	in := New(Scenario{Name: "mrefuse", Rules: []Rule{{Kind: KindRefuse}}})
	srv := httptest.NewServer(in.Middleware(backing()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/task/map")
	if err == nil {
		resp.Body.Close()
		t.Fatal("aborted handler still produced a response")
	}
}

func TestMiddlewareTruncate(t *testing.T) {
	in := New(Scenario{Name: "mtrunc", Rules: []Rule{{Kind: KindTruncate}}})
	srv := httptest.NewServer(in.Middleware(backing()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/shuffle")
	if err != nil {
		// Some truncations abort before headers flush; that is also a
		// valid mid-body cut from the caller's point of view.
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil && len(body) >= len(payload) {
		t.Fatalf("full body (%d bytes) survived truncation", len(body))
	}
}

func TestMiddlewareCorrupt(t *testing.T) {
	in := New(Scenario{Name: "mcorrupt", Rules: []Rule{{Kind: KindCorrupt}}})
	srv := httptest.NewServer(in.Middleware(backing()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/task/map")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != len(payload) || body[0] != payload[0] {
		t.Fatalf("corrupt reshaped reply: %d bytes, status %d", len(body), body[0])
	}
	if strings.Contains(string(body), "GMWR") {
		t.Error("magic survived corruption")
	}
}
