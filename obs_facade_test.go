package gmeansmr

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// chromeTraceFile mirrors the Chrome trace-event format WithTrace writes.
type chromeTraceFile struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		PID  int     `json:"pid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestWithTracePhaseSpansSumToWallTime is the trace acceptance gate: a
// traced G-means run writes a valid Chrome-trace file whose sequential
// "phase" spans (stage, init, round-N, merge, finalize) account for the
// run's wall time within 5%.
func TestWithTracePhaseSpansSumToWallTime(t *testing.T) {
	ds := mixturePoints(t, 4, 4, 4000, 3)
	var chrome, eventLog bytes.Buffer
	c, err := New(WithSeed(3), WithTrace(&chrome), WithTraceJSON(&eventLog))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := c.Run(context.Background(), FromPoints(ds.Points))
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 3 || res.K > 8 {
		t.Fatalf("k = %d for true k=4", res.K)
	}

	var out chromeTraceFile
	if err := json.Unmarshal(chrome.Bytes(), &out); err != nil {
		t.Fatalf("WithTrace output is not valid Chrome-trace JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" || len(out.TraceEvents) == 0 {
		t.Fatalf("unexpected trace shape: unit=%q events=%d", out.DisplayTimeUnit, len(out.TraceEvents))
	}

	var runDur, phaseSum float64 // µs
	var rounds int
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 {
			t.Fatalf("malformed event %+v", ev)
		}
		switch ev.Cat {
		case "run":
			if ev.Name == "clusterer-run" {
				runDur = ev.Dur
			}
		case "phase":
			phaseSum += ev.Dur
			if strings.HasPrefix(ev.Name, "round-") {
				rounds++
			}
		}
	}
	if runDur == 0 {
		t.Fatal("no clusterer-run span recorded")
	}
	if rounds != res.Iterations {
		t.Errorf("trace has %d round phases, run reported %d iterations", rounds, res.Iterations)
	}
	if wallUS := float64(wall.Microseconds()); runDur > wallUS {
		t.Errorf("run span (%v µs) exceeds measured wall time (%v µs)", runDur, wallUS)
	}
	// The driver's phases are sequential and non-overlapping; everything
	// between them is in-memory bookkeeping. Their sum must explain the
	// run's wall time within 5% either way.
	if phaseSum < 0.95*runDur || phaseSum > 1.05*runDur {
		t.Errorf("phase spans sum to %.0f µs, run wall is %.0f µs (ratio %.3f, want within 5%%)",
			phaseSum, runDur, phaseSum/runDur)
	}

	// The JSON event log must parse and agree on the span count.
	var log struct {
		Events []struct {
			Name string `json:"name"`
		} `json:"events"`
	}
	if err := json.Unmarshal(eventLog.Bytes(), &log); err != nil {
		t.Fatalf("WithTraceJSON output is not valid JSON: %v", err)
	}
	if len(log.Events) != len(out.TraceEvents) {
		t.Errorf("event log has %d spans, chrome trace has %d", len(log.Events), len(out.TraceEvents))
	}
}

// TestProgressEventStreamCompleteness pins the Progress contract: a
// multi-round G-means run emits exactly one event per round — strategy
// attached, per-round Duration, phase breakdown — plus exactly one
// closing merge event, under both the columnar and row-major paths and
// for both merge configurations (explicit radius merges in the driver,
// MergeAuto merges in the facade).
func TestProgressEventStreamCompleteness(t *testing.T) {
	ds := mixturePoints(t, 4, 3, 3000, 7)
	paths := []struct {
		name string
		opts []Option
	}{
		{"columnar", nil},
		{"row-major", []Option{WithKDTree()}},
	}
	merges := []struct {
		name string
		opt  Option
	}{
		{"explicit-radius", WithMergeRadius(1e-9)},
		{"auto", WithMergeRadius(MergeAuto)},
	}
	for _, path := range paths {
		for _, merge := range merges {
			t.Run(path.name+"/"+merge.name, func(t *testing.T) {
				var events []Progress
				reg := NewRegistry()
				opts := append([]Option{
					WithSeed(7),
					WithProgress(func(p Progress) { events = append(events, p) }),
					WithObserver(reg),
					merge.opt,
				}, path.opts...)
				c, err := New(opts...)
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.Run(context.Background(), FromPoints(ds.Points))
				if err != nil {
					t.Fatal(err)
				}
				if res.Iterations < 2 {
					t.Fatalf("run converged in %d rounds; need a multi-round run", res.Iterations)
				}

				var mergeEvents int
				seenRound := make(map[int]bool)
				for _, ev := range events {
					if ev.Algorithm != AlgorithmGMeansMR {
						t.Errorf("event algorithm = %q", ev.Algorithm)
					}
					if ev.Strategy == "merge" {
						mergeEvents++
						if ev.Round != res.Iterations+1 {
							t.Errorf("merge event round = %d, want %d", ev.Round, res.Iterations+1)
						}
						continue
					}
					if seenRound[ev.Round] {
						t.Errorf("round %d emitted more than one event", ev.Round)
					}
					seenRound[ev.Round] = true
					if ev.Strategy == "" {
						t.Errorf("round %d event has no strategy", ev.Round)
					}
					if ev.Duration <= 0 {
						t.Errorf("round %d event has no duration", ev.Round)
					}
					if len(ev.Phases) == 0 {
						t.Errorf("round %d event has no phase breakdown", ev.Round)
					}
					var phaseSum time.Duration
					for _, d := range ev.Phases {
						phaseSum += d
					}
					if phaseSum > ev.Duration {
						t.Errorf("round %d phases sum to %v, exceeding round duration %v",
							ev.Round, phaseSum, ev.Duration)
					}
				}
				for round := 1; round <= res.Iterations; round++ {
					if !seenRound[round] {
						t.Errorf("round %d emitted no event", round)
					}
				}
				if len(seenRound) != res.Iterations {
					t.Errorf("saw events for %d rounds, run reported %d", len(seenRound), res.Iterations)
				}
				if mergeEvents != 1 {
					t.Errorf("saw %d merge events, want exactly 1", mergeEvents)
				}

				// The observer registry ticked once per test round.
				if got := reg.Counter("gmeans_rounds_total").Value(); got != int64(res.Iterations) {
					t.Errorf("gmeans_rounds_total = %d, want %d", got, res.Iterations)
				}
				if reg.Histogram("gmeans_round_seconds", nil).Count() != int64(res.Iterations) {
					t.Errorf("gmeans_round_seconds count = %d, want %d",
						reg.Histogram("gmeans_round_seconds", nil).Count(), res.Iterations)
				}
			})
		}
	}
}
