module gmeansmr

go 1.24
