package gmeansmr_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	gmeansmr "gmeansmr"
)

// ExampleClusterer_Run trains on a streamed Gaussian mixture — never
// materialized in memory — under a cancellable context.
func ExampleClusterer_Run() {
	c, err := gmeansmr.New(gmeansmr.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	src := gmeansmr.FromMixture(gmeansmr.DatasetSpec{
		K: 3, Dim: 2, N: 3000, MinSeparation: 30, Seed: 1,
	})
	res, err := c.Run(context.Background(), src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered k = %d\n", res.K)
	// Output: discovered k = 3
}

// ExampleNew_algorithms selects a baseline algorithm behind the same
// Result shape as the paper's MR G-means.
func ExampleNew_algorithms() {
	ds, err := gmeansmr.GenerateDataset(gmeansmr.DatasetSpec{
		K: 3, Dim: 2, N: 3000, MinSeparation: 30, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	c, err := gmeansmr.New(
		gmeansmr.WithAlgorithm(gmeansmr.AlgorithmSeqGMeans),
		gmeansmr.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run(context.Background(), gmeansmr.FromPoints(ds.Points))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s discovered k = %d\n", res.Algorithm, res.K)
	// Output: seq-gmeans discovered k = 3
}

// ExampleCluster runs MapReduce G-means through the deprecated one-shot
// facade; new code should use New(...).Run(ctx, src) instead.
func ExampleCluster() {
	ds, err := gmeansmr.GenerateDataset(gmeansmr.DatasetSpec{
		K: 3, Dim: 2, N: 3000, MinSeparation: 30, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := gmeansmr.Cluster(ds.Points, gmeansmr.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered k = %d\n", res.K)
	// Output: discovered k = 3
}

// ExampleFromFile clusters a point file from the local file system. The
// format — text records or the GMPB binary frame format (docs/formats.md)
// — is sniffed from the file's first bytes, so the same call serves both;
// dimensionality is inferred from the records.
func ExampleFromFile() {
	ds, err := gmeansmr.GenerateDataset(gmeansmr.DatasetSpec{
		K: 3, Dim: 2, N: 3000, MinSeparation: 30, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "gmeansmr-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "points.txt")
	var buf strings.Builder
	for _, p := range ds.Points {
		fmt.Fprintf(&buf, "%g %g\n", p[0], p[1])
	}
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		log.Fatal(err)
	}

	c, err := gmeansmr.New(gmeansmr.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run(context.Background(), gmeansmr.FromFile(path))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered k = %d\n", res.K)
	// Output: discovered k = 3
}
