package gmeansmr_test

import (
	"fmt"
	"log"

	gmeansmr "gmeansmr"
)

// ExampleCluster runs MapReduce G-means over a synthetic mixture whose
// cluster count is unknown to the algorithm.
func ExampleCluster() {
	ds, err := gmeansmr.GenerateDataset(gmeansmr.DatasetSpec{
		K: 3, Dim: 2, N: 3000, MinSeparation: 30, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := gmeansmr.Cluster(ds.Points, gmeansmr.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered k = %d\n", res.K)
	// Output: discovered k = 3
}
