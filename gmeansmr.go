// Package gmeansmr is a Go reproduction of "Determining the k in k-means
// with MapReduce" (Debatty, Michiardi, Mees, Thonnard — EDBT/ICDT 2014):
// G-means on MapReduce, an algorithm that clusters a dataset *and*
// determines the number of clusters k with computation cost proportional
// to n·k, against the O(n·k²) of running k-means for every candidate k.
//
// The public API is a context-aware, algorithm-pluggable training engine:
// build a Clusterer with functional options, then Run it against a
// DataSource under a context that can cancel or deadline the run.
//
// # Quick start
//
//	c, _ := gmeansmr.New(gmeansmr.WithSeed(1))
//	src := gmeansmr.FromMixture(gmeansmr.DatasetSpec{K: 10, Dim: 2, N: 100_000})
//	res, _ := c.Run(context.Background(), src)
//	fmt.Println("discovered k =", res.K)
//
// Data can come from memory (FromPoints), from a CSV/TSV stream that is
// never materialized (FromReader, FromFile), or from a generated Gaussian
// mixture (FromMixture). The algorithm is pluggable: WithAlgorithm selects
// MR G-means (the paper's contribution, the default), the original
// sequential G-means, X-means, or multi-k-means with a k-selection
// criterion — the baselines the paper compares against — all behind the
// same Result shape. Long runs are observable and cancellable:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
//	defer cancel()
//	c, _ := gmeansmr.New(
//	    gmeansmr.WithAlgorithm(gmeansmr.AlgorithmGMeansMR),
//	    gmeansmr.WithProgress(func(p gmeansmr.Progress) {
//	        log.Printf("round %d: k=%d strategy=%s", p.Round, p.K, p.Strategy)
//	    }),
//	)
//	res, err := c.Run(ctx, gmeansmr.FromFile("points.csv"))
//
// # Serving
//
// Training is a batch job; answering "which cluster does this point belong
// to?" is an online one. A finished run converts into a persistent,
// versioned model snapshot and a concurrent HTTP server (see cmd/serve for
// the standalone binary):
//
//	m, _ := gmeansmr.BuildModel(res, points)
//	f, _ := os.Create("model.gmm")
//	gmeansmr.SaveModel(m, f) // later: m, _ = gmeansmr.LoadModel(r)
//	f.Close()
//
//	srv, _ := gmeansmr.NewServer(m, gmeansmr.ServerOptions{})
//	a, _ := srv.Assign([]float64{1.5, 2.5}) // kd-tree nearest center
//	fmt.Println("cluster", a.Cluster, "at distance", a.Distance)
//	http.ListenAndServe(":8080", srv)       // POST /v1/assign, /v1/assign/batch, ...
//
// The server shares one immutable model snapshot across all goroutines and
// hot-swaps it atomically (POST /v1/model/reload), so a newly trained model
// replaces the old one with zero downtime.
//
// For full control over the simulated cluster, file system and algorithm
// parameters, build a core.Config directly (see the cmd/ and examples/
// directories).
package gmeansmr

import (
	"context"
	"fmt"
	"io"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/model"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/obs"
	"gmeansmr/internal/serve"
)

// Registry is a dependency-free metrics registry (counters, gauges,
// fixed-bucket latency histograms with p50/p95/p99) that exports in
// Prometheus text format. Pass one to WithObserver to collect run metrics,
// and to a debug HTTP endpoint to expose them (see cmd/gmeans -debug-addr).
type Registry = obs.Registry

// NewRegistry returns an empty metrics registry for WithObserver.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Point is a point in R^d.
type Point = []float64

// DatasetSpec describes a synthetic Gaussian-mixture dataset.
type DatasetSpec = dataset.Spec

// Dataset is a generated mixture with ground truth.
type Dataset = dataset.Dataset

// GenerateDataset materializes a synthetic Gaussian mixture. To stream a
// mixture into a run without materializing it, use FromMixture instead.
func GenerateDataset(spec DatasetSpec) (*Dataset, error) { return dataset.Generate(spec) }

// Options tune a Cluster run. The zero value reproduces the paper's
// configuration: start from one cluster, α=0.0001 Anderson–Darling, two
// k-means passes per round, a 4-node simulated cluster.
//
// Deprecated: Options parameterizes the legacy Cluster entry point; new
// code should pass functional options to New instead.
type Options struct {
	// Nodes is the simulated cluster size (0 = 4, the paper's testbed).
	Nodes int
	// Alpha is the Anderson–Darling significance level (0 = 0.0001).
	Alpha float64
	// MaxK stops splitting once this many centers exist (0 = unlimited).
	MaxK int
	// MergeRadius, when positive, merges final centers closer than this —
	// the paper's proposed post-processing against over-estimation. Set it
	// to MergeAuto to derive a radius from the centers themselves.
	MergeRadius float64
	// Seed makes the run deterministic.
	Seed int64
}

// MergeAuto asks a run to derive the merge radius from the discovered
// centers (half the median nearest-neighbor distance).
const MergeAuto = -1.0

// Result is the outcome of a clustering run, with one shape across all
// selectable algorithms.
type Result struct {
	// Algorithm identifies which algorithm produced the result.
	Algorithm Algorithm
	// Centers are the discovered cluster centers; K = len(Centers).
	Centers []Point
	K       int
	// Iterations counts the algorithm's driver rounds: G-means rounds,
	// X-means improve-structure rounds, multi-k-means chained jobs, or
	// sequential G-means cluster tests.
	Iterations int
	// Assignment maps each input point to its center. It is nil when an MR
	// algorithm ran over a streaming source (computing it would need a
	// second pass over data that was never held in memory).
	Assignment []int
	// Counters exposes the run's cost accounting (distance computations,
	// shuffle bytes, Anderson–Darling tests, dataset reads, ...). The MR
	// algorithms report full engine counters; the in-memory algorithms
	// report their own coarse counts.
	Counters map[string]int64
	// WCSS is the within-cluster sum of squares, for the algorithms that
	// compute it (sequential G-means, X-means, multi-k-means).
	WCSS float64
	// WCSSByK maps every candidate k to its WCSS — AlgorithmMultiK only,
	// nil otherwise.
	WCSSByK map[int]float64
}

// Cluster runs MR G-means over in-memory points with the paper's default
// configuration and returns the discovered centers.
//
// Deprecated: Cluster is a thin wrapper over the Clusterer API and offers
// no cancellation, no algorithm choice and no observability. Use
//
//	c, err := gmeansmr.New(...options...)
//	res, err := c.Run(ctx, gmeansmr.FromPoints(points))
//
// instead.
func Cluster(points []Point, opts Options) (*Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("gmeansmr: no points")
	}
	if err := validateMergeRadius(opts.MergeRadius); err != nil {
		return nil, err
	}
	options := []Option{WithSeed(opts.Seed)}
	if opts.Nodes > 0 {
		options = append(options, WithNodes(opts.Nodes))
	}
	if opts.Alpha != 0 {
		options = append(options, WithAlpha(opts.Alpha))
	}
	if opts.MaxK > 0 {
		options = append(options, WithMaxK(opts.MaxK))
	}
	if opts.MergeRadius != 0 {
		options = append(options, WithMergeRadius(opts.MergeRadius))
	}
	// Preserve the original facade's split sizing (estimated from n·dim
	// rather than measured bytes) so historical runs stay bit-identical.
	cluster := mr.DefaultCluster()
	if opts.Nodes > 0 {
		cluster = cluster.WithNodes(opts.Nodes)
	}
	approxBytes := len(points) * len(points[0]) * 18
	splitSize := approxBytes / (cluster.MapCapacity() * 4)
	if splitSize < 4<<10 {
		splitSize = 4 << 10
	}
	options = append(options, WithSplitSize(splitSize))

	c, err := New(options...)
	if err != nil {
		return nil, err
	}
	return c.Run(context.Background(), FromPoints(points))
}

// Model is a trained clustering model: centers, per-cluster statistics and
// training provenance, with a versioned binary snapshot format.
type Model = model.Model

// ModelMeta is the training provenance carried inside a model snapshot.
type ModelMeta = model.Meta

// BuildModel converts a finished run into a persistent model, deriving
// per-cluster point counts and radii from the run's assignment. points
// must be the points the run was trained on (for a streaming source,
// Materialize them first and rerun, or build the model from a FromPoints
// run).
func BuildModel(res *Result, points []Point) (*Model, error) {
	if res == nil {
		return nil, fmt.Errorf("gmeansmr: nil result")
	}
	algorithm := string(res.Algorithm)
	if algorithm == "" {
		algorithm = string(AlgorithmGMeansMR)
	}
	return model.FromTraining(res.Centers, points, res.Assignment, ModelMeta{
		Algorithm:  algorithm,
		Iterations: res.Iterations,
		Counters:   res.Counters,
	})
}

// SaveModel writes a versioned, checksummed model snapshot to w. The
// encoding is deterministic and round-trip stable.
func SaveModel(m *Model, w io.Writer) error { return m.Save(w) }

// LoadModel reads a model snapshot written by SaveModel, verifying its
// magic, format version and checksum.
func LoadModel(r io.Reader) (*Model, error) { return model.Load(r) }

// Server is the cluster-assignment HTTP server: kd-tree-accelerated
// nearest-center queries over an immutable model snapshot that hot-swaps
// atomically. It implements http.Handler; see the package example and
// cmd/serve.
type Server = serve.Server

// ServerOptions configure NewServer; the zero value is serviceable.
type ServerOptions = serve.Options

// Assignment is one answered query: nearest center index plus Euclidean
// distance.
type Assignment = serve.Assignment

// NewServer builds an assignment server over m. The model is retained and
// must not be mutated afterwards.
func NewServer(m *Model, opts ServerOptions) (*Server, error) { return serve.New(m, opts) }
