// Package gmeansmr is a Go reproduction of "Determining the k in k-means
// with MapReduce" (Debatty, Michiardi, Mees, Thonnard — EDBT/ICDT 2014):
// G-means on MapReduce, an algorithm that clusters a dataset *and*
// determines the number of clusters k with computation cost proportional
// to n·k, against the O(n·k²) of running k-means for every candidate k.
//
// The package is a facade over the internal building blocks:
//
//   - a simulated HDFS + Hadoop-1.x-style MapReduce engine (splits,
//     combiners, sort shuffle, task heap budgets, counters, node×slot
//     parallelism);
//   - the MR G-means driver and its three jobs (KMeans,
//     KMeansAndFindNewCenters, TestClusters/TestFewClusters);
//   - the multi-k-means baseline and the classic "pick k" criteria
//     (elbow, silhouette, Dunn, gap statistic, jump method, BIC/AIC);
//   - a Gaussian-mixture workload generator.
//
// # Quick start
//
//	ds, _ := gmeansmr.GenerateDataset(gmeansmr.DatasetSpec{K: 10, Dim: 2, N: 100_000})
//	res, _ := gmeansmr.Cluster(ds.Points, gmeansmr.Options{})
//	fmt.Println("discovered k =", res.K)
//
// # Serving
//
// Training is a batch job; answering "which cluster does this point belong
// to?" is an online one. A finished run converts into a persistent,
// versioned model snapshot and a concurrent HTTP server (see cmd/serve for
// the standalone binary):
//
//	m, _ := gmeansmr.BuildModel(res, ds.Points)
//	f, _ := os.Create("model.gmm")
//	gmeansmr.SaveModel(m, f) // later: m, _ = gmeansmr.LoadModel(r)
//	f.Close()
//
//	srv, _ := gmeansmr.NewServer(m, gmeansmr.ServerOptions{})
//	a, _ := srv.Assign([]float64{1.5, 2.5}) // kd-tree nearest center
//	fmt.Println("cluster", a.Cluster, "at distance", a.Distance)
//	http.ListenAndServe(":8080", srv)       // POST /v1/assign, /v1/assign/batch, ...
//
// The server shares one immutable model snapshot across all goroutines and
// hot-swaps it atomically (POST /v1/model/reload), so a newly trained model
// replaces the old one with zero downtime.
//
// For full control over the simulated cluster, file system and algorithm
// parameters, build a core.Config directly (see the cmd/ and examples/
// directories).
package gmeansmr

import (
	"fmt"
	"io"

	"gmeansmr/internal/core"
	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
	"gmeansmr/internal/kmeansmr"
	"gmeansmr/internal/model"
	"gmeansmr/internal/mr"
	"gmeansmr/internal/serve"
	"gmeansmr/internal/vec"
)

// Point is a point in R^d.
type Point = []float64

// DatasetSpec describes a synthetic Gaussian-mixture dataset.
type DatasetSpec = dataset.Spec

// Dataset is a generated mixture with ground truth.
type Dataset = dataset.Dataset

// GenerateDataset materializes a synthetic Gaussian mixture.
func GenerateDataset(spec DatasetSpec) (*Dataset, error) { return dataset.Generate(spec) }

// Options tune a Cluster run. The zero value reproduces the paper's
// configuration: start from one cluster, α=0.0001 Anderson–Darling, two
// k-means passes per round, a 4-node simulated cluster.
type Options struct {
	// Nodes is the simulated cluster size (0 = 4, the paper's testbed).
	Nodes int
	// Alpha is the Anderson–Darling significance level (0 = 0.0001).
	Alpha float64
	// MaxK stops splitting once this many centers exist (0 = unlimited).
	MaxK int
	// MergeRadius, when positive, merges final centers closer than this —
	// the paper's proposed post-processing against over-estimation. Set it
	// to MergeAuto to derive a radius from the centers themselves.
	MergeRadius float64
	// Seed makes the run deterministic.
	Seed int64
}

// MergeAuto asks Cluster to derive the merge radius from the discovered
// centers (half the median nearest-neighbor distance).
const MergeAuto = -1.0

// Result is the outcome of a Cluster run.
type Result struct {
	// Centers are the discovered cluster centers; K = len(Centers).
	Centers []Point
	K       int
	// Iterations is the number of G-means rounds executed.
	Iterations int
	// Assignment maps each input point to its center.
	Assignment []int
	// Counters exposes the engine's cost accounting (distance
	// computations, shuffle bytes, Anderson–Darling tests, ...).
	Counters map[string]int64
}

// Cluster runs MR G-means over in-memory points: it loads them into a
// simulated DFS, executes the full MapReduce pipeline, and returns the
// discovered centers. This is the "just cluster my data" entry point; for
// streaming datasets or experiment-grade control use the internal packages
// directly.
func Cluster(points []Point, opts Options) (*Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("gmeansmr: no points")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("gmeansmr: point %d has %d dimensions, want %d", i, len(p), dim)
		}
	}
	cluster := mr.DefaultCluster()
	if opts.Nodes > 0 {
		cluster = cluster.WithNodes(opts.Nodes)
	}

	// Size splits so every map slot has a few tasks.
	approxBytes := len(points) * dim * 18
	splitSize := approxBytes / (cluster.MapCapacity() * 4)
	if splitSize < 4<<10 {
		splitSize = 4 << 10
	}
	fs := dfs.New(splitSize)
	w := fs.Writer("/data/points.txt")
	for _, p := range points {
		w.WriteString(dataset.FormatPoint(p))
		w.WriteString("\n")
	}
	w.Close()

	cfg := core.Config{
		Env:   kmeansmr.Env{FS: fs, Cluster: cluster, Input: "/data/points.txt", Dim: dim},
		Alpha: opts.Alpha,
		MaxK:  opts.MaxK,
		Seed:  opts.Seed,
	}
	if opts.MergeRadius > 0 {
		cfg.MergeRadius = opts.MergeRadius
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	centers := res.Centers
	if opts.MergeRadius == MergeAuto {
		centers = core.MergeCloseCenters(centers, core.SuggestMergeRadius(centers))
	}

	assign := make([]int, len(points))
	for i, p := range points {
		assign[i], _ = vec.NearestIndex(p, centers)
	}
	return &Result{
		Centers:    centers,
		K:          len(centers),
		Iterations: res.Iterations,
		Assignment: assign,
		Counters:   res.Counters.Snapshot(),
	}, nil
}

// Model is a trained clustering model: centers, per-cluster statistics and
// training provenance, with a versioned binary snapshot format.
type Model = model.Model

// ModelMeta is the training provenance carried inside a model snapshot.
type ModelMeta = model.Meta

// BuildModel converts a finished Cluster run into a persistent model,
// deriving per-cluster point counts and radii from the run's assignment.
// points must be the same slice Cluster was called with.
func BuildModel(res *Result, points []Point) (*Model, error) {
	if res == nil {
		return nil, fmt.Errorf("gmeansmr: nil result")
	}
	return model.FromTraining(res.Centers, points, res.Assignment, ModelMeta{
		Algorithm:  "gmeans-mr",
		Iterations: res.Iterations,
		Counters:   res.Counters,
	})
}

// SaveModel writes a versioned, checksummed model snapshot to w. The
// encoding is deterministic and round-trip stable.
func SaveModel(m *Model, w io.Writer) error { return m.Save(w) }

// LoadModel reads a model snapshot written by SaveModel, verifying its
// magic, format version and checksum.
func LoadModel(r io.Reader) (*Model, error) { return model.Load(r) }

// Server is the cluster-assignment HTTP server: kd-tree-accelerated
// nearest-center queries over an immutable model snapshot that hot-swaps
// atomically. It implements http.Handler; see the package example and
// cmd/serve.
type Server = serve.Server

// ServerOptions configure NewServer; the zero value is serviceable.
type ServerOptions = serve.Options

// Assignment is one answered query: nearest center index plus Euclidean
// distance.
type Assignment = serve.Assignment

// NewServer builds an assignment server over m. The model is retained and
// must not be mutated afterwards.
func NewServer(m *Model, opts ServerOptions) (*Server, error) { return serve.New(m, opts) }
