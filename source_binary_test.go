package gmeansmr

import (
	"os"
	"path/filepath"
	"testing"

	"gmeansmr/internal/dataset"
	"gmeansmr/internal/dfs"
)

// TestFromFileSniffsBinary: the public file source must transparently read
// the binary point format datagen -format binary emits, yielding exactly
// the points the text encoding yields.
func TestFromFileSniffsBinary(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{K: 3, Dim: 4, N: 120, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	textPath := filepath.Join(dir, "p.txt")
	var text []byte
	for _, p := range ds.Points {
		text = append(text, dataset.FormatPoint(p)...)
		text = append(text, '\n')
	}
	if err := os.WriteFile(textPath, text, 0o644); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "p.gmpb")
	if err := os.WriteFile(binPath, dataset.EncodePointsBinary(ds.Points, 4), 0o644); err != nil {
		t.Fatal(err)
	}

	a, err := Materialize(FromFile(textPath))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(FromFile(binPath))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(ds.Points) || len(b) != len(ds.Points) {
		t.Fatalf("text %d, binary %d, want %d points", len(a), len(b), len(ds.Points))
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatalf("point %d dim %d: text %v != binary %v", i, d, a[i][d], b[i][d])
			}
		}
	}

	// Re-readability: a second Open must replay the stream.
	src := FromFile(binPath)
	if _, err := Materialize(src); err != nil {
		t.Fatal(err)
	}
	again, err := Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(ds.Points) {
		t.Fatalf("second read yielded %d points", len(again))
	}
}

// TestFromFileBinaryTruncated: a binary file cut mid-frame must fail with
// a descriptive error, not silently drop the tail.
func TestFromFileBinaryTruncated(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{K: 2, Dim: 3, N: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.EncodePointsBinary(ds.Points, 3)
	path := filepath.Join(t.TempDir(), "trunc.gmpb")
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(FromFile(path)); err == nil {
		t.Fatal("truncated binary file accepted")
	}

	// A bare header (zero points) is structurally valid but yields the
	// same "no points" error as an empty text file.
	empty := filepath.Join(t.TempDir(), "empty.gmpb")
	if err := os.WriteFile(empty, dfs.BinaryHeader(3), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(FromFile(empty)); err == nil {
		t.Fatal("empty binary source accepted")
	}
}
